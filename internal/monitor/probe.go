package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// ProbeState is a dependency's health classification.
type ProbeState int

// Probe outcomes, ordered by severity.
const (
	StateOK       ProbeState = iota // fully serviceable
	StateDegraded                   // impaired but the platform still serves
	StateDown                       // hard failure; readiness flips to 503
)

// String implements fmt.Stringer.
func (s ProbeState) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateDegraded:
		return "degraded"
	case StateDown:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// MarshalJSON renders the state as its string form.
func (s ProbeState) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses the string form back (clients decoding /readyz).
func (s *ProbeState) UnmarshalJSON(b []byte) error {
	var raw string
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	switch raw {
	case "ok":
		*s = StateOK
	case "degraded":
		*s = StateDegraded
	case "down":
		*s = StateDown
	default:
		return fmt.Errorf("monitor: unknown probe state %q", raw)
	}
	return nil
}

// Health is one dependency check's outcome.
type Health struct {
	State  ProbeState `json:"state"`
	Detail string     `json:"detail,omitempty"` // PHI-free, no date strings
}

// Healthy, Degraded, and Down build the three Health shapes.
func Healthy(detail string) Health  { return Health{State: StateOK, Detail: detail} }
func Degraded(detail string) Health { return Health{State: StateDegraded, Detail: detail} }
func Down(detail string) Health     { return Health{State: StateDown, Detail: detail} }

// Check is a named dependency probe. Probes must be cheap, side-effect
// free (no record growth, no breaker trips), and PHI-free in details.
type Check struct {
	Name  string
	Probe func() Health
}

// Prober runs registered dependency checks and aggregates them into a
// platform-level readiness verdict. A nil Prober probes nothing and
// reports OK (monitoring disabled keeps legacy health behavior).
type Prober struct {
	mu     sync.Mutex
	checks []Check
	ttl    time.Duration // Cached serves last for this long (0 = always probe)
	last   Report
	// Rounds are numbered at start so overlapping probes (watchdog tick
	// plus HTTP-triggered rounds) can never leave a stale report as last:
	// a round only stores its report if no later-started round already did.
	round     uint64
	lastRound uint64
	inflight  chan struct{} // closed when the current on-demand round finishes
}

// Report is the aggregated outcome of one probe round.
type Report struct {
	Overall    ProbeState        `json:"overall"`
	Ready      bool              `json:"ready"`
	Components map[string]Health `json:"components"`
	At         time.Time         `json:"at"`
}

// NewProber creates an empty prober; register checks with AddCheck.
func NewProber() *Prober { return &Prober{} }

// AddCheck registers a dependency check. Safe to call concurrently
// with Probe.
func (p *Prober) AddCheck(name string, probe func() Health) {
	if p == nil || probe == nil {
		return
	}
	p.mu.Lock()
	p.checks = append(p.checks, Check{Name: name, Probe: probe})
	p.mu.Unlock()
}

// Probe runs every check and returns the aggregate: Overall is the
// worst component state, Ready is true unless some component is Down
// (degraded platforms still accept traffic — they are impaired, not
// dead).
func (p *Prober) Probe() Report {
	if p == nil {
		return Report{Overall: StateOK, Ready: true, At: time.Now()}
	}
	p.mu.Lock()
	p.round++
	round := p.round
	checks := append([]Check(nil), p.checks...)
	p.mu.Unlock()
	rep := Report{Overall: StateOK, Components: make(map[string]Health, len(checks)), At: time.Now()}
	for _, c := range checks {
		h := c.Probe()
		rep.Components[c.Name] = h
		if h.State > rep.Overall {
			rep.Overall = h.State
		}
	}
	rep.Ready = rep.Overall != StateDown
	p.mu.Lock()
	if round > p.lastRound {
		p.lastRound = round
		p.last = rep
	}
	p.mu.Unlock()
	return rep
}

// SetCacheTTL bounds how long Cached may serve the last stored report
// before running a fresh round. The watchdog owner sets it to a small
// multiple of the tick interval so HTTP readiness reads ride the
// watchdog's refresh; zero (the default) makes Cached always probe —
// the right behavior when no watchdog is refreshing the report.
func (p *Prober) SetCacheTTL(d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.ttl = d
	p.mu.Unlock()
}

// Cached returns the last stored report while it is younger than the
// cache TTL, and otherwise runs a probe round. Concurrent stale callers
// coalesce into a single round — unauthenticated readiness endpoints
// must not be able to multiply load on the dependencies being probed.
func (p *Prober) Cached() Report {
	if p == nil {
		return Report{Overall: StateOK, Ready: true, At: time.Now()}
	}
	p.mu.Lock()
	if p.ttl > 0 && !p.last.At.IsZero() && time.Since(p.last.At) < p.ttl {
		rep := p.last
		p.mu.Unlock()
		return rep
	}
	if wait := p.inflight; wait != nil {
		p.mu.Unlock()
		<-wait
		p.mu.Lock()
		rep := p.last
		p.mu.Unlock()
		return rep
	}
	done := make(chan struct{})
	p.inflight = done
	p.mu.Unlock()
	rep := p.Probe()
	p.mu.Lock()
	p.inflight = nil
	p.mu.Unlock()
	close(done)
	return rep
}

// Last returns the most recent Probe report (zero Report before the
// first probe).
func (p *Prober) Last() Report {
	if p == nil {
		return Report{Overall: StateOK, Ready: true}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.last
}

// ReadyzHandler serves GET /readyz: 200 with the JSON Report while the
// platform is ok or degraded, 503 when any dependency is down. The
// report comes from Cached: while the watchdog keeps the stored report
// fresh the handler never touches a dependency, and when no recent
// report exists concurrent requests coalesce into one probe round —
// the route is unauthenticated, so per-request probing would let
// clients multiply load on the probed dependencies.
func ReadyzHandler(p *Prober) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rep := p.Cached()
		w.Header().Set("Content-Type", "application/json")
		if !rep.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(rep)
	})
}

// StatuszHandler serves GET /statusz: a human-readable plain-text view
// of the latest probe round and SLO evaluations — the operator's
// one-glance page. Like ReadyzHandler it serves the cached report
// (fresh rounds only when the watchdog hasn't refreshed it recently).
// The evals func may be nil (probes only).
func StatuszHandler(p *Prober, evals func() []Evaluation) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rep := p.Cached()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "healthcloud status: %s (ready=%v)\n\ndependencies:\n", rep.Overall, rep.Ready)
		names := make([]string, 0, len(rep.Components))
		for name := range rep.Components {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h := rep.Components[name]
			fmt.Fprintf(w, "  %-20s %-9s %s\n", name, h.State, h.Detail)
		}
		if evals == nil {
			return
		}
		fmt.Fprintf(w, "\nobjectives:\n")
		for _, ev := range evals() {
			verdict := "MET"
			if !ev.Met {
				verdict = "BREACHED"
			}
			fmt.Fprintf(w, "  %-20s %-9s %s\n", ev.Name, verdict, ev.Detail)
		}
	})
}
