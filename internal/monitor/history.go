// Package monitor is the platform's self-monitoring layer: a metrics
// history ring sampled from the telemetry registry, a declarative SLO
// evaluator with rolling error budgets, a dependency-aware health
// prober behind /readyz and /statusz, and a watchdog that turns SLO
// breaches and probe failures into structured audit alerts. Everything
// follows the telemetry contract: a nil receiver is valid and does
// nothing, so disabled monitoring costs one nil check.
package monitor

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"healthcloud/internal/telemetry"
)

// Sample is one point-in-time registry snapshot in the history ring.
type Sample struct {
	At   time.Time          `json:"at"`
	Snap telemetry.Snapshot `json:"snapshot"`
}

// History is a fixed-capacity ring of registry snapshots — the
// time-series behind sliding-window rate, delta, and quantile-drift
// queries. Recording overwrites the oldest sample once full, so memory
// is bounded by capacity regardless of uptime.
type History struct {
	reg *telemetry.Registry
	now func() time.Time

	mu      sync.Mutex
	samples []Sample // ring buffer
	next    int      // index the next Record writes
	count   int      // live samples, <= cap(samples)
}

// DefaultHistoryCapacity keeps ~4 minutes of history at a 1s watchdog
// tick — enough for the default SLO windows with headroom.
const DefaultHistoryCapacity = 256

// NewHistory creates a ring over reg holding up to capacity samples
// (<=0 selects DefaultHistoryCapacity). A nil registry yields a nil
// History, preserving the zero-cost-when-disabled contract.
func NewHistory(reg *telemetry.Registry, capacity int) *History {
	if reg == nil {
		return nil
	}
	if capacity <= 0 {
		capacity = DefaultHistoryCapacity
	}
	return &History{reg: reg, now: time.Now, samples: make([]Sample, capacity)}
}

// SetClock replaces the sample timestamp source (tests advance it
// manually for deterministic windows).
func (h *History) SetClock(now func() time.Time) {
	if h == nil || now == nil {
		return
	}
	h.mu.Lock()
	h.now = now
	h.mu.Unlock()
}

// Record snapshots the registry into the ring and returns the sample.
func (h *History) Record() Sample {
	if h == nil {
		return Sample{}
	}
	snap := h.reg.Snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Sample{At: h.now(), Snap: snap}
	h.samples[h.next] = s
	h.next = (h.next + 1) % len(h.samples)
	if h.count < len(h.samples) {
		h.count++
	}
	return s
}

// Len reports how many samples the ring currently holds.
func (h *History) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Samples returns the stored samples inside the window ending at the
// newest sample, oldest first (all samples when window <= 0). The
// boundary is inclusive: a sample exactly window old is returned.
func (h *History) Samples(window time.Duration) []Sample {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.windowLocked(window)
}

func (h *History) windowLocked(window time.Duration) []Sample {
	if h.count == 0 {
		return nil
	}
	out := make([]Sample, 0, h.count)
	start := (h.next - h.count + len(h.samples)) % len(h.samples)
	for i := 0; i < h.count; i++ {
		out = append(out, h.samples[(start+i)%len(h.samples)])
	}
	if window <= 0 {
		return out
	}
	cutoff := out[len(out)-1].At.Add(-window)
	for i, s := range out {
		if !s.At.Before(cutoff) {
			return out[i:]
		}
	}
	return out[len(out)-1:]
}

// bounds returns the oldest and newest samples of the window (equal
// when only one sample falls inside it).
func (h *History) bounds(window time.Duration) (oldest, newest Sample, ok bool) {
	if h == nil {
		return Sample{}, Sample{}, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	w := h.windowLocked(window)
	if len(w) == 0 {
		return Sample{}, Sample{}, false
	}
	return w[0], w[len(w)-1], true
}

// CounterDelta returns how much the named counter grew across the
// window (zero when unknown or with fewer than two samples).
func (h *History) CounterDelta(name string, window time.Duration) uint64 {
	oldest, newest, ok := h.bounds(window)
	if !ok {
		return 0
	}
	then, now := oldest.Snap.Counters[name], newest.Snap.Counters[name]
	if now < then { // registry replaced mid-window; treat as restart
		return now
	}
	return now - then
}

// CounterRate returns the counter's growth per second over the window.
func (h *History) CounterRate(name string, window time.Duration) float64 {
	oldest, newest, ok := h.bounds(window)
	if !ok || !newest.At.After(oldest.At) {
		return 0
	}
	delta := h.CounterDelta(name, window)
	return float64(delta) / newest.At.Sub(oldest.At).Seconds()
}

// GaugeLast returns the gauge's value in the newest sample.
func (h *History) GaugeLast(name string) (int64, bool) {
	_, newest, ok := h.bounds(0)
	if !ok {
		return 0, false
	}
	v, present := newest.Snap.Gauges[name]
	return v, present
}

// HistogramWindow returns the histogram of observations recorded
// during the window — newest snapshot minus oldest (the whole lifetime
// when only one sample exists).
func (h *History) HistogramWindow(name string, window time.Duration) telemetry.HistogramSnapshot {
	oldest, newest, ok := h.bounds(window)
	if !ok {
		return telemetry.HistogramSnapshot{}
	}
	cur := newest.Snap.Histograms[name]
	if oldest.At.Equal(newest.At) {
		return cur
	}
	return cur.Sub(oldest.Snap.Histograms[name])
}

// QuantileDrift returns how much the q-quantile of the named histogram
// moved between the window immediately before the last `window` and
// the window itself — positive when latency is rising. With too little
// history for two windows it returns zero.
func (h *History) QuantileDrift(name string, q float64, window time.Duration) time.Duration {
	recent := h.HistogramWindow(name, window)
	prior := h.HistogramWindow(name, 2*window).Sub(recent)
	if recent.Count == 0 || prior.Count == 0 {
		return 0
	}
	return recent.Quantile(q) - prior.Quantile(q)
}

// HistoryResponse is the GET /metrics/history body.
type HistoryResponse struct {
	Capacity int      `json:"capacity"`
	Samples  []Sample `json:"samples"`
}

// HistoryHandler serves the ring as JSON at GET /metrics/history. An
// optional ?window=30s query bounds how far back samples go. A nil
// History reports monitoring disabled.
func HistoryHandler(h *History) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if h == nil {
			http.Error(w, "monitoring disabled", http.StatusNotFound)
			return
		}
		var window time.Duration
		if raw := req.URL.Query().Get("window"); raw != "" {
			d, err := time.ParseDuration(raw)
			if err != nil {
				http.Error(w, "bad window: "+err.Error(), http.StatusBadRequest)
				return
			}
			window = d
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(HistoryResponse{
			Capacity: cap(h.samples),
			Samples:  h.Samples(window),
		})
	})
}
