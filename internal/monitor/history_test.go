package monitor

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"healthcloud/internal/telemetry"
)

// tickClock is a manually-advanced time source for deterministic
// sliding windows.
type tickClock struct{ now time.Time }

func (c *tickClock) Now() time.Time          { return c.now }
func (c *tickClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func newTestHistory(capacity int) (*History, *telemetry.Registry, *tickClock) {
	reg := telemetry.NewRegistry()
	h := NewHistory(reg, capacity)
	clk := &tickClock{now: time.Unix(1700000000, 0)}
	h.SetClock(clk.Now)
	return h, reg, clk
}

func TestHistoryRingOverwrites(t *testing.T) {
	h, reg, clk := newTestHistory(3)
	c := reg.Counter("x_total")
	for i := 0; i < 5; i++ {
		c.Inc()
		h.Record()
		clk.Advance(time.Second)
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", h.Len())
	}
	all := h.Samples(0)
	if len(all) != 3 {
		t.Fatalf("Samples = %d, want 3", len(all))
	}
	// Oldest surviving sample is the 3rd record (counter at 3).
	if got := all[0].Snap.Counters["x_total"]; got != 3 {
		t.Errorf("oldest sample counter = %d, want 3", got)
	}
	if got := all[2].Snap.Counters["x_total"]; got != 5 {
		t.Errorf("newest sample counter = %d, want 5", got)
	}
}

func TestHistoryCounterDeltaAndRate(t *testing.T) {
	h, reg, clk := newTestHistory(16)
	c := reg.Counter("uploads_total")
	for i := 0; i < 10; i++ {
		c.Add(2)
		h.Record()
		clk.Advance(time.Second)
	}
	// Whole ring: 10 samples spanning 9s, counter went 2 -> 20.
	if d := h.CounterDelta("uploads_total", 0); d != 18 {
		t.Errorf("full delta = %d, want 18", d)
	}
	// 4s window holds the last 5 samples (inclusive boundary): 12 -> 20.
	if d := h.CounterDelta("uploads_total", 4*time.Second); d != 8 {
		t.Errorf("windowed delta = %d, want 8", d)
	}
	if r := h.CounterRate("uploads_total", 4*time.Second); r != 2 {
		t.Errorf("rate = %v/s, want 2", r)
	}
	if d := h.CounterDelta("unknown_total", 0); d != 0 {
		t.Errorf("unknown counter delta = %d", d)
	}
}

func TestHistoryGaugeAndHistogramWindow(t *testing.T) {
	h, reg, clk := newTestHistory(16)
	g := reg.Gauge("depth")
	hist := reg.Histogram("lat_seconds")

	g.Set(7)
	hist.Observe(2 * time.Millisecond)
	h.Record()
	clk.Advance(time.Second)

	g.Set(3)
	hist.Observe(400 * time.Millisecond)
	hist.Observe(450 * time.Millisecond)
	h.Record()

	if v, ok := h.GaugeLast("depth"); !ok || v != 3 {
		t.Errorf("GaugeLast = %d,%v, want 3,true", v, ok)
	}
	// The 500ms window spans only the newest sample... the window is
	// measured between samples, so ask for the 1s pair: the windowed
	// histogram should hold the two slow observations, not the fast one.
	win := h.HistogramWindow("lat_seconds", time.Second)
	if win.Count != 2 {
		t.Fatalf("windowed count = %d, want 2", win.Count)
	}
	if q := win.Quantile(0.5); q < 100*time.Millisecond {
		t.Errorf("windowed median %v should reflect only slow observations", q)
	}
}

func TestHistoryQuantileDrift(t *testing.T) {
	h, reg, clk := newTestHistory(16)
	hist := reg.Histogram("lat_seconds")

	h.Record() // baseline before any observations
	clk.Advance(time.Second)
	for i := 0; i < 10; i++ {
		hist.Observe(2 * time.Millisecond)
	}
	h.Record() // prior window: fast
	clk.Advance(time.Second)
	for i := 0; i < 10; i++ {
		hist.Observe(800 * time.Millisecond)
	}
	h.Record() // recent window: slow

	drift := h.QuantileDrift("lat_seconds", 0.5, time.Second)
	if drift <= 0 {
		t.Fatalf("drift = %v, want positive (latency rose)", drift)
	}
}

func TestHistoryNilSafety(t *testing.T) {
	var h *History
	h.Record()
	h.SetClock(time.Now)
	if h.Len() != 0 || h.Samples(0) != nil || h.CounterDelta("x", 0) != 0 {
		t.Fatal("nil history must no-op")
	}
	if NewHistory(nil, 8) != nil {
		t.Fatal("NewHistory(nil) must return nil")
	}
}

func TestHistoryHandler(t *testing.T) {
	h, reg, clk := newTestHistory(8)
	reg.Counter("x_total").Inc()
	h.Record()
	clk.Advance(time.Minute)
	h.Record()

	rec := httptest.NewRecorder()
	HistoryHandler(h).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics/history", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body HistoryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Capacity != 8 || len(body.Samples) != 2 {
		t.Fatalf("capacity %d samples %d, want 8 and 2", body.Capacity, len(body.Samples))
	}

	// Window query narrows the result.
	rec = httptest.NewRecorder()
	HistoryHandler(h).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics/history?window=30s", nil))
	json.Unmarshal(rec.Body.Bytes(), &body)
	if len(body.Samples) != 1 {
		t.Fatalf("windowed samples = %d, want 1", len(body.Samples))
	}

	// Error paths: bad window, wrong method, disabled monitoring.
	rec = httptest.NewRecorder()
	HistoryHandler(h).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics/history?window=bogus", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad window: status %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	HistoryHandler(h).ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics/history", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	HistoryHandler(nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics/history", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("nil history: status %d, want 404", rec.Code)
	}
}
