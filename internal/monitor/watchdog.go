package monitor

import (
	"sync"
	"time"

	"healthcloud/internal/audit"
	"healthcloud/internal/telemetry"
)

// Alert is one active anomaly the watchdog has raised and not yet
// cleared.
type Alert struct {
	Name       string      `json:"name"`   // "slo:<objective>" or "probe:<component>"
	Detail     string      `json:"detail"` // PHI-free, no date strings
	Severity   audit.Level `json:"severity"`
	RaisedTick uint64      `json:"raised_tick"`
	TraceID    string      `json:"trace_id,omitempty"` // tick trace that raised it
}

// WatchdogConfig assembles a watchdog from the monitor pieces. Any
// field may be nil; missing pieces simply contribute nothing to a tick.
type WatchdogConfig struct {
	History   *History
	Evaluator *Evaluator
	Prober    *Prober
	Audit     *audit.Log        // alert events land here
	Tracer    *telemetry.Tracer // each tick runs inside a monitor.tick span
	// Collectors run at the top of every tick, before the registry is
	// sampled — the place to copy pull-style values (queue depths,
	// leader presence) into gauges so the ring and SLOs can see them.
	Collectors []func()
}

// TickReport is what one watchdog tick observed.
type TickReport struct {
	Tick        uint64       `json:"tick"`
	Evaluations []Evaluation `json:"evaluations"`
	Probe       Report       `json:"probe"`
	Raised      []Alert      `json:"raised,omitempty"`
	Cleared     []Alert      `json:"cleared,omitempty"`
}

// Watchdog periodically samples the registry into the history ring,
// evaluates SLOs, probes dependencies, and converts state changes into
// structured audit alerts. A nil Watchdog does nothing.
type Watchdog struct {
	cfg WatchdogConfig

	mu     sync.Mutex
	active map[string]Alert
	ticks  uint64
	stop   chan struct{}
	done   chan struct{}
}

// NewWatchdog builds a watchdog over the configured pieces.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	return &Watchdog{cfg: cfg, active: make(map[string]Alert)}
}

// Ticks reports how many ticks have run.
func (w *Watchdog) Ticks() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ticks
}

// ActiveAlerts returns the currently-raised alerts, unordered.
func (w *Watchdog) ActiveAlerts() []Alert {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Alert, 0, len(w.active))
	for _, a := range w.active {
		out = append(out, a)
	}
	return out
}

// Tick runs one full watchdog round synchronously: collectors →
// history sample → SLO evaluation → dependency probe → alert diff.
// Tests and E18 call it directly for deterministic timing; Start calls
// it on an interval.
func (w *Watchdog) Tick() TickReport {
	if w == nil {
		return TickReport{}
	}
	span := w.cfg.Tracer.StartRoot("monitor.tick")
	sc := span.Context()
	defer func() {
		span.End()
		w.cfg.Tracer.FinishTrace(sc.TraceID)
	}()

	for _, collect := range w.cfg.Collectors {
		collect()
	}
	w.cfg.History.Record()
	evals := w.cfg.Evaluator.Evaluate()
	probe := w.cfg.Prober.Probe()

	// Desired alert set for this tick.
	want := make(map[string]Alert)
	for _, ev := range evals {
		if ev.Met {
			continue
		}
		want["slo:"+ev.Name] = Alert{
			Name: "slo:" + ev.Name, Detail: ev.Detail, Severity: audit.LevelWarn,
		}
	}
	for name, h := range probe.Components {
		if h.State == StateOK {
			continue
		}
		sev := audit.LevelWarn
		if h.State == StateDown {
			sev = audit.LevelError
		}
		want["probe:"+name] = Alert{
			Name: "probe:" + name, Detail: h.State.String() + ": " + h.Detail, Severity: sev,
		}
	}

	w.mu.Lock()
	w.ticks++
	tick := w.ticks
	var raised, cleared []Alert
	for name, a := range want {
		if _, ok := w.active[name]; ok {
			continue // already raised; stays active, no duplicate event
		}
		a.RaisedTick = tick
		a.TraceID = sc.TraceID.String()
		w.active[name] = a
		raised = append(raised, a)
	}
	for name, a := range w.active {
		if _, ok := want[name]; !ok {
			delete(w.active, name)
			cleared = append(cleared, a)
		}
	}
	w.mu.Unlock()

	for _, a := range raised {
		span.SetAttr("raised", a.Name)
		w.cfg.Audit.Record(audit.Event{
			Level: a.Severity, Service: "monitor", Action: "alert-raised",
			Actor: "watchdog", Resource: a.Name, Detail: a.Detail + " trace=" + a.TraceID,
		})
	}
	for _, a := range cleared {
		span.SetAttr("cleared", a.Name)
		w.cfg.Audit.Record(audit.Event{
			Level: audit.LevelInfo, Service: "monitor", Action: "alert-cleared",
			Actor: "watchdog", Resource: a.Name, Detail: "recovered, raising trace=" + a.TraceID,
		})
	}
	return TickReport{Tick: tick, Evaluations: evals, Probe: probe, Raised: raised, Cleared: cleared}
}

// Start launches the watchdog loop at the given interval (<=0 selects
// one second). Stop terminates it. Calling Start twice without Stop is
// a no-op.
func (w *Watchdog) Start(interval time.Duration) {
	if w == nil {
		return
	}
	if interval <= 0 {
		interval = time.Second
	}
	w.mu.Lock()
	if w.stop != nil {
		w.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	w.stop, w.done = stop, done
	w.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				w.Tick()
			}
		}
	}()
}

// Stop terminates the watchdog loop and waits for the in-flight tick.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.mu.Lock()
	stop, done := w.stop, w.done
	w.stop, w.done = nil, nil
	w.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
