package monitor

// Monitor bundles the self-monitoring pieces one platform owns. A nil
// *Monitor is valid — every accessor returns nil, and nil pieces no-op
// — so disabled monitoring costs nothing.
type Monitor struct {
	history   *History
	evaluator *Evaluator
	prober    *Prober
	watchdog  *Watchdog
}

// New assembles a Monitor; any piece may be nil.
func New(h *History, e *Evaluator, p *Prober, w *Watchdog) *Monitor {
	return &Monitor{history: h, evaluator: e, prober: p, watchdog: w}
}

// History returns the metrics history ring.
func (m *Monitor) History() *History {
	if m == nil {
		return nil
	}
	return m.history
}

// Evaluator returns the SLO evaluator.
func (m *Monitor) Evaluator() *Evaluator {
	if m == nil {
		return nil
	}
	return m.evaluator
}

// Prober returns the dependency prober.
func (m *Monitor) Prober() *Prober {
	if m == nil {
		return nil
	}
	return m.prober
}

// Watchdog returns the anomaly watchdog.
func (m *Monitor) Watchdog() *Watchdog {
	if m == nil {
		return nil
	}
	return m.watchdog
}
