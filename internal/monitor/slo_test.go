package monitor

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func evalNamed(t *testing.T, evals []Evaluation, name string) Evaluation {
	t.Helper()
	for _, ev := range evals {
		if ev.Name == name {
			return ev
		}
	}
	t.Fatalf("no evaluation named %q in %+v", name, evals)
	return Evaluation{}
}

func TestRatioObjectiveAndBurnRate(t *testing.T) {
	h, reg, clk := newTestHistory(16)
	good := reg.Counter("stored_total")
	bad := reg.Counter("failed_total")
	ev := NewEvaluator(h, []Objective{{
		Name: "upload-success", Kind: RatioObjective,
		Good: []string{"stored_total"}, Bad: []string{"failed_total"}, MinRatio: 0.99,
	}})

	h.Record() // empty baseline: vacuously met
	out := ev.Evaluate()
	e := evalNamed(t, out, "upload-success")
	if !e.Met || e.Value != 1 || e.BudgetRemaining != 1 || !e.HasBudget {
		t.Fatalf("no-traffic evaluation = %+v, want vacuously met with an untouched budget", e)
	}

	good.Add(98)
	bad.Add(2) // 98% success: below the 99% floor
	clk.Advance(time.Second)
	h.Record()
	e = evalNamed(t, ev.Evaluate(), "upload-success")
	if e.Met {
		t.Fatalf("98%% success must breach a 99%% objective: %+v", e)
	}
	// Bad ratio 0.02 against a 0.01 budget: burning at 2x.
	if e.BurnRate < 1.9 || e.BurnRate > 2.1 {
		t.Errorf("burn rate = %v, want ~2", e.BurnRate)
	}
	if e.BudgetRemaining >= 0 {
		t.Errorf("budget remaining = %v, want negative (overspent)", e.BudgetRemaining)
	}

	good.Add(900) // recover: windowed ratio back above floor
	clk.Advance(time.Second)
	h.Record()
	e = evalNamed(t, ev.Evaluate(), "upload-success")
	if !e.Met {
		t.Fatalf("recovered ratio should meet the objective: %+v", e)
	}
}

func TestQuantileGaugeAndDeltaObjectives(t *testing.T) {
	h, reg, clk := newTestHistory(16)
	lat := reg.Histogram("proc_seconds")
	depth := reg.Gauge("queue_depth")
	dlq := reg.Counter("dead_lettered_total")
	ev := NewEvaluator(h, []Objective{
		{Name: "p95", Kind: QuantileObjective, Histogram: "proc_seconds", Quantile: 0.95, MaxDuration: 100 * time.Millisecond},
		{Name: "depth", Kind: GaugeObjective, Gauge: "queue_depth", MaxGauge: 5},
		{Name: "dlq-empty", Kind: DeltaObjective, Counter: "dead_lettered_total", MaxDelta: 0},
	})

	h.Record()
	for i := 0; i < 20; i++ {
		lat.Observe(2 * time.Millisecond)
	}
	depth.Set(3)
	clk.Advance(time.Second)
	h.Record()
	for _, e := range ev.Evaluate() {
		if !e.Met {
			t.Fatalf("healthy platform breached %+v", e)
		}
	}

	// Breach all three.
	for i := 0; i < 20; i++ {
		lat.Observe(2 * time.Second)
	}
	depth.Set(50)
	dlq.Inc()
	clk.Advance(time.Second)
	h.Record()
	for _, name := range []string{"p95", "depth", "dlq-empty"} {
		if e := evalNamed(t, ev.Evaluate(), name); e.Met {
			t.Errorf("%s should be breached: %+v", name, e)
		}
	}
}

// TestBudgetJSONAlwaysPresent pins the wire shape: an exactly-exhausted
// budget (burn rate 1, remaining 0 — the most alert-worthy state) must
// serialize its zeros, with HasBudget separating real budgets from
// objectives that have none.
func TestBudgetJSONAlwaysPresent(t *testing.T) {
	h, reg, clk := newTestHistory(16)
	h.Record() // empty baseline
	// 75 good / 25 bad against a 0.75 floor: the bad ratio (0.25) spends
	// exactly the budget (0.25) — all values exact in binary floating
	// point, so burn rate is exactly 1 and remaining exactly 0.
	reg.Counter("good_total").Add(75)
	reg.Counter("bad_total").Add(25)
	clk.Advance(time.Second)
	h.Record()
	ev := NewEvaluator(h, []Objective{
		{Name: "ratio", Kind: RatioObjective, Good: []string{"good_total"},
			Bad: []string{"bad_total"}, MinRatio: 0.75},
		{Name: "depth", Kind: GaugeObjective, Gauge: "queue_depth", MaxGauge: 5},
	})
	out := ev.Evaluate()

	e := evalNamed(t, out, "ratio")
	if !e.HasBudget || e.BurnRate != 1 || e.BudgetRemaining != 0 {
		t.Fatalf("exhausted-budget evaluation = %+v, want burn 1 / remaining 0", e)
	}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"has_budget":true`, `"burn_rate":1`, `"budget_remaining":0`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("exhausted budget JSON missing %s: %s", want, b)
		}
	}

	g := evalNamed(t, out, "depth")
	if g.HasBudget {
		t.Fatalf("gauge objective claims a budget: %+v", g)
	}
	b, err = json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"has_budget":false`) {
		t.Errorf("non-ratio JSON missing has_budget:false: %s", b)
	}
}

func TestEvaluatorNilSafety(t *testing.T) {
	var e *Evaluator
	if e.Evaluate() != nil || e.Objectives() != nil {
		t.Fatal("nil evaluator must no-op")
	}
	if NewEvaluator(nil, nil) != nil {
		t.Fatal("NewEvaluator(nil history) must return nil")
	}
}
