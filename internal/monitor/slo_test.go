package monitor

import (
	"testing"
	"time"
)

func evalNamed(t *testing.T, evals []Evaluation, name string) Evaluation {
	t.Helper()
	for _, ev := range evals {
		if ev.Name == name {
			return ev
		}
	}
	t.Fatalf("no evaluation named %q in %+v", name, evals)
	return Evaluation{}
}

func TestRatioObjectiveAndBurnRate(t *testing.T) {
	h, reg, clk := newTestHistory(16)
	good := reg.Counter("stored_total")
	bad := reg.Counter("failed_total")
	ev := NewEvaluator(h, []Objective{{
		Name: "upload-success", Kind: RatioObjective,
		Good: []string{"stored_total"}, Bad: []string{"failed_total"}, MinRatio: 0.99,
	}})

	h.Record() // empty baseline: vacuously met
	out := ev.Evaluate()
	e := evalNamed(t, out, "upload-success")
	if !e.Met || e.Value != 1 || e.BudgetRemaining != 1 {
		t.Fatalf("no-traffic evaluation = %+v, want vacuously met", e)
	}

	good.Add(98)
	bad.Add(2) // 98% success: below the 99% floor
	clk.Advance(time.Second)
	h.Record()
	e = evalNamed(t, ev.Evaluate(), "upload-success")
	if e.Met {
		t.Fatalf("98%% success must breach a 99%% objective: %+v", e)
	}
	// Bad ratio 0.02 against a 0.01 budget: burning at 2x.
	if e.BurnRate < 1.9 || e.BurnRate > 2.1 {
		t.Errorf("burn rate = %v, want ~2", e.BurnRate)
	}
	if e.BudgetRemaining >= 0 {
		t.Errorf("budget remaining = %v, want negative (overspent)", e.BudgetRemaining)
	}

	good.Add(900) // recover: windowed ratio back above floor
	clk.Advance(time.Second)
	h.Record()
	e = evalNamed(t, ev.Evaluate(), "upload-success")
	if !e.Met {
		t.Fatalf("recovered ratio should meet the objective: %+v", e)
	}
}

func TestQuantileGaugeAndDeltaObjectives(t *testing.T) {
	h, reg, clk := newTestHistory(16)
	lat := reg.Histogram("proc_seconds")
	depth := reg.Gauge("queue_depth")
	dlq := reg.Counter("dead_lettered_total")
	ev := NewEvaluator(h, []Objective{
		{Name: "p95", Kind: QuantileObjective, Histogram: "proc_seconds", Quantile: 0.95, MaxDuration: 100 * time.Millisecond},
		{Name: "depth", Kind: GaugeObjective, Gauge: "queue_depth", MaxGauge: 5},
		{Name: "dlq-empty", Kind: DeltaObjective, Counter: "dead_lettered_total", MaxDelta: 0},
	})

	h.Record()
	for i := 0; i < 20; i++ {
		lat.Observe(2 * time.Millisecond)
	}
	depth.Set(3)
	clk.Advance(time.Second)
	h.Record()
	for _, e := range ev.Evaluate() {
		if !e.Met {
			t.Fatalf("healthy platform breached %+v", e)
		}
	}

	// Breach all three.
	for i := 0; i < 20; i++ {
		lat.Observe(2 * time.Second)
	}
	depth.Set(50)
	dlq.Inc()
	clk.Advance(time.Second)
	h.Record()
	for _, name := range []string{"p95", "depth", "dlq-empty"} {
		if e := evalNamed(t, ev.Evaluate(), name); e.Met {
			t.Errorf("%s should be breached: %+v", name, e)
		}
	}
}

func TestEvaluatorNilSafety(t *testing.T) {
	var e *Evaluator
	if e.Evaluate() != nil || e.Objectives() != nil {
		t.Fatal("nil evaluator must no-op")
	}
	if NewEvaluator(nil, nil) != nil {
		t.Fatal("NewEvaluator(nil history) must return nil")
	}
}
