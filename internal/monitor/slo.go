package monitor

import (
	"fmt"
	"time"
)

// ObjectiveKind selects how an Objective is computed from the history
// ring.
type ObjectiveKind int

// The supported objective shapes.
const (
	// RatioObjective requires good/(good+bad) >= MinRatio over the
	// window, from the windowed deltas of the listed counters.
	RatioObjective ObjectiveKind = iota
	// QuantileObjective requires the windowed Quantile of Histogram to
	// stay at or under MaxDuration.
	QuantileObjective
	// GaugeObjective requires the gauge's latest value to stay at or
	// under MaxGauge.
	GaugeObjective
	// DeltaObjective requires the counter to grow by at most MaxDelta
	// over the window (MaxDelta 0 = "must not move", the DLQ shape).
	DeltaObjective
)

// Objective is one declarative service-level objective evaluated
// against the metrics history ring.
type Objective struct {
	Name   string // stable identifier, used as the alert name
	Kind   ObjectiveKind
	Window time.Duration // sliding window (0 = whole ring)

	// RatioObjective fields.
	Good     []string // counters whose windowed deltas count as good events
	Bad      []string // counters whose windowed deltas count as bad events
	MinRatio float64

	// QuantileObjective fields.
	Histogram   string
	Quantile    float64
	MaxDuration time.Duration

	// GaugeObjective fields.
	Gauge    string
	MaxGauge int64

	// DeltaObjective fields.
	Counter  string
	MaxDelta uint64
}

// Evaluation is one objective's verdict at one watchdog tick.
type Evaluation struct {
	Name   string  `json:"name"`
	Met    bool    `json:"met"`
	Value  float64 `json:"value"`  // measured quantity (ratio, seconds, count)
	Bound  float64 `json:"bound"`  // the objective's threshold in the same unit
	Detail string  `json:"detail"` // human-readable, PHI-free, no date strings

	// HasBudget marks the objective as carrying an error budget (ratio
	// objectives with MinRatio < 1). When false, BurnRate and
	// BudgetRemaining are meaningless zeros — the fields are always
	// serialized, so an exhausted budget (BudgetRemaining 0, the most
	// alert-worthy value) stays distinguishable from "no budget at all".
	HasBudget bool `json:"has_budget"`
	// BurnRate is how fast the error budget is burning over the window:
	// (bad ratio) / (allowed bad ratio). 1.0 burns exactly the budget;
	// above 1 the objective fails eventually even if currently met.
	BurnRate float64 `json:"burn_rate"`
	// BudgetRemaining is the fraction of this window's error budget left
	// (1 = untouched, 0 = exhausted, negative = overspent). It is
	// window-relative — recomputed from the sliding window each
	// evaluation, not a lifetime running total.
	BudgetRemaining float64 `json:"budget_remaining"`
}

// Evaluator computes a fixed set of objectives from a history ring.
type Evaluator struct {
	hist       *History
	objectives []Objective
}

// NewEvaluator creates an evaluator over hist. A nil history yields a
// nil evaluator (monitoring disabled).
func NewEvaluator(hist *History, objectives []Objective) *Evaluator {
	if hist == nil {
		return nil
	}
	return &Evaluator{hist: hist, objectives: objectives}
}

// Objectives returns the configured objectives.
func (e *Evaluator) Objectives() []Objective {
	if e == nil {
		return nil
	}
	return e.objectives
}

// Evaluate computes every objective against the current ring contents.
func (e *Evaluator) Evaluate() []Evaluation {
	if e == nil {
		return nil
	}
	out := make([]Evaluation, 0, len(e.objectives))
	for _, o := range e.objectives {
		out = append(out, e.evalOne(o))
	}
	return out
}

func (e *Evaluator) evalOne(o Objective) Evaluation {
	ev := Evaluation{Name: o.Name}
	switch o.Kind {
	case RatioObjective:
		var good, bad uint64
		for _, c := range o.Good {
			good += e.hist.CounterDelta(c, o.Window)
		}
		for _, c := range o.Bad {
			bad += e.hist.CounterDelta(c, o.Window)
		}
		total := good + bad
		ratio := 1.0 // no traffic: vacuously met, budget untouched
		if total > 0 {
			ratio = float64(good) / float64(total)
		}
		ev.Value, ev.Bound = ratio, o.MinRatio
		ev.Met = ratio >= o.MinRatio
		if budget := 1 - o.MinRatio; budget > 0 {
			ev.HasBudget = true
			if total > 0 {
				badRatio := float64(bad) / float64(total)
				ev.BurnRate = badRatio / budget
			}
			ev.BudgetRemaining = 1 - ev.BurnRate
		}
		ev.Detail = fmt.Sprintf("success ratio %.4f (floor %.4f, %d good / %d bad)", ratio, o.MinRatio, good, bad)
	case QuantileObjective:
		q := e.hist.HistogramWindow(o.Histogram, o.Window).Quantile(o.Quantile)
		ev.Value, ev.Bound = q.Seconds(), o.MaxDuration.Seconds()
		ev.Met = q <= o.MaxDuration
		ev.Detail = fmt.Sprintf("p%d %v (ceiling %v)", int(o.Quantile*100), q.Round(time.Microsecond), o.MaxDuration)
	case GaugeObjective:
		v, _ := e.hist.GaugeLast(o.Gauge)
		ev.Value, ev.Bound = float64(v), float64(o.MaxGauge)
		ev.Met = v <= o.MaxGauge
		ev.Detail = fmt.Sprintf("%s at %d (ceiling %d)", o.Gauge, v, o.MaxGauge)
	case DeltaObjective:
		d := e.hist.CounterDelta(o.Counter, o.Window)
		ev.Value, ev.Bound = float64(d), float64(o.MaxDelta)
		ev.Met = d <= o.MaxDelta
		ev.Detail = fmt.Sprintf("%s grew by %d (ceiling %d)", o.Counter, d, o.MaxDelta)
	default:
		ev.Met = true
		ev.Detail = "unknown objective kind"
	}
	return ev
}
