package monitor

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProberAggregatesWorstState(t *testing.T) {
	p := NewProber()
	state := StateOK
	p.AddCheck("store", func() Health { return Healthy("serving") })
	p.AddCheck("kb", func() Health { return Health{State: state, Detail: "remote"} })

	rep := p.Probe()
	if rep.Overall != StateOK || !rep.Ready || len(rep.Components) != 2 {
		t.Fatalf("healthy report = %+v", rep)
	}

	state = StateDegraded
	rep = p.Probe()
	if rep.Overall != StateDegraded || !rep.Ready {
		t.Fatalf("degraded must stay ready: %+v", rep)
	}

	state = StateDown
	rep = p.Probe()
	if rep.Overall != StateDown || rep.Ready {
		t.Fatalf("down must flip readiness: %+v", rep)
	}
	if p.Last().Overall != StateDown {
		t.Fatal("Last must return the latest report")
	}
}

func TestReadyzHandlerStatusCodes(t *testing.T) {
	p := NewProber()
	state := StateOK
	p.AddCheck("dep", func() Health { return Health{State: state, Detail: "x"} })
	h := ReadyzHandler(p)

	get := func() (*httptest.ResponseRecorder, Report) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		var rep Report
		json.Unmarshal(rec.Body.Bytes(), &rep)
		return rec, rep
	}

	if rec, rep := get(); rec.Code != http.StatusOK || !rep.Ready {
		t.Fatalf("ok: status %d ready %v", rec.Code, rep.Ready)
	}
	state = StateDegraded
	if rec, rep := get(); rec.Code != http.StatusOK || rep.Overall.String() != "degraded" {
		t.Fatalf("degraded: status %d overall %v (degraded stays 200)", rec.Code, rep.Overall)
	}
	state = StateDown
	if rec, rep := get(); rec.Code != http.StatusServiceUnavailable || rep.Ready {
		t.Fatalf("down: status %d ready %v, want 503/false", rec.Code, rep.Ready)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/readyz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d, want 405", rec.Code)
	}
}

func TestProbeStateJSON(t *testing.T) {
	b, err := json.Marshal(Health{State: StateDegraded, Detail: "d"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"degraded"`) {
		t.Fatalf("state must serialize as string: %s", b)
	}
}

func TestStatuszHandler(t *testing.T) {
	p := NewProber()
	p.AddCheck("ledger", func() Health { return Degraded("slow commit path") })
	evals := func() []Evaluation {
		return []Evaluation{{Name: "upload-success", Met: false, Detail: "success ratio 0.9500 (floor 0.9900, 95 good / 5 bad)"}}
	}
	rec := httptest.NewRecorder()
	StatuszHandler(p, evals).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statusz", nil))
	body := rec.Body.String()
	for _, want := range []string{"degraded", "ledger", "slow commit path", "upload-success", "BREACHED"} {
		if !strings.Contains(body, want) {
			t.Errorf("statusz missing %q:\n%s", want, body)
		}
	}
}

// TestCachedServesFreshReport pins the readiness-serving contract: with
// a TTL set (the watchdog refreshes the report every tick), Cached must
// serve the stored report without touching dependencies; with no TTL
// (manual-tick setups) every Cached call probes so verdicts are always
// current.
func TestCachedServesFreshReport(t *testing.T) {
	p := NewProber()
	var mu sync.Mutex
	rounds := 0
	p.AddCheck("dep", func() Health {
		mu.Lock()
		rounds++
		mu.Unlock()
		return Healthy("x")
	})

	// TTL 0: every call probes.
	p.Cached()
	p.Cached()
	mu.Lock()
	if rounds != 2 {
		t.Fatalf("no-TTL Cached ran %d rounds, want 2 (always probe)", rounds)
	}
	mu.Unlock()

	// Generous TTL: the report stored by the last round is fresh, so
	// repeated calls serve it without touching the dependency again.
	p.SetCacheTTL(time.Hour)
	p.Cached()
	p.Cached()
	p.Cached()
	mu.Lock()
	defer mu.Unlock()
	if rounds != 2 {
		t.Fatalf("fresh-report Cached ran %d rounds, want 2 (serve the cache)", rounds)
	}
}

// TestProbeRoundsNeverRegress pins the overlapping-round guard: a probe
// round that started earlier but finished later (watchdog tick racing
// an HTTP-triggered round) must not overwrite a newer report in Last.
func TestProbeRoundsNeverRegress(t *testing.T) {
	p := NewProber()
	var mu sync.Mutex
	state := StateDown
	entered := make(chan struct{})
	release := make(chan struct{})
	p.AddCheck("dep", func() Health {
		mu.Lock()
		s := state
		mu.Unlock()
		if s == StateDown {
			entered <- struct{}{}
			<-release // stall the round that observed the outage
		}
		return Health{State: s}
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Probe() // round 1: observes down, finishes last
	}()
	<-entered
	mu.Lock()
	state = StateOK
	mu.Unlock()
	if rep := p.Probe(); rep.Overall != StateOK { // round 2: healthy, finishes first
		t.Fatalf("round 2 overall = %v, want ok", rep.Overall)
	}
	close(release)
	<-done
	if got := p.Last().Overall; got != StateOK {
		t.Fatalf("Last after out-of-order finish = %v, want ok (stale round must not win)", got)
	}
}

func TestProberNilSafety(t *testing.T) {
	var p *Prober
	p.AddCheck("x", func() Health { return Healthy("") })
	p.SetCacheTTL(time.Second)
	if rep := p.Probe(); !rep.Ready || rep.Overall != StateOK {
		t.Fatal("nil prober must report ready")
	}
	if rep := p.Cached(); !rep.Ready || rep.Overall != StateOK {
		t.Fatal("nil prober Cached must report ready")
	}
	rec := httptest.NewRecorder()
	ReadyzHandler(nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("nil prober readyz status %d, want 200", rec.Code)
	}
}
