package monitor

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestProberAggregatesWorstState(t *testing.T) {
	p := NewProber()
	state := StateOK
	p.AddCheck("store", func() Health { return Healthy("serving") })
	p.AddCheck("kb", func() Health { return Health{State: state, Detail: "remote"} })

	rep := p.Probe()
	if rep.Overall != StateOK || !rep.Ready || len(rep.Components) != 2 {
		t.Fatalf("healthy report = %+v", rep)
	}

	state = StateDegraded
	rep = p.Probe()
	if rep.Overall != StateDegraded || !rep.Ready {
		t.Fatalf("degraded must stay ready: %+v", rep)
	}

	state = StateDown
	rep = p.Probe()
	if rep.Overall != StateDown || rep.Ready {
		t.Fatalf("down must flip readiness: %+v", rep)
	}
	if p.Last().Overall != StateDown {
		t.Fatal("Last must return the latest report")
	}
}

func TestReadyzHandlerStatusCodes(t *testing.T) {
	p := NewProber()
	state := StateOK
	p.AddCheck("dep", func() Health { return Health{State: state, Detail: "x"} })
	h := ReadyzHandler(p)

	get := func() (*httptest.ResponseRecorder, Report) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		var rep Report
		json.Unmarshal(rec.Body.Bytes(), &rep)
		return rec, rep
	}

	if rec, rep := get(); rec.Code != http.StatusOK || !rep.Ready {
		t.Fatalf("ok: status %d ready %v", rec.Code, rep.Ready)
	}
	state = StateDegraded
	if rec, rep := get(); rec.Code != http.StatusOK || rep.Overall.String() != "degraded" {
		t.Fatalf("degraded: status %d overall %v (degraded stays 200)", rec.Code, rep.Overall)
	}
	state = StateDown
	if rec, rep := get(); rec.Code != http.StatusServiceUnavailable || rep.Ready {
		t.Fatalf("down: status %d ready %v, want 503/false", rec.Code, rep.Ready)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/readyz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d, want 405", rec.Code)
	}
}

func TestProbeStateJSON(t *testing.T) {
	b, err := json.Marshal(Health{State: StateDegraded, Detail: "d"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"degraded"`) {
		t.Fatalf("state must serialize as string: %s", b)
	}
}

func TestStatuszHandler(t *testing.T) {
	p := NewProber()
	p.AddCheck("ledger", func() Health { return Degraded("slow commit path") })
	evals := func() []Evaluation {
		return []Evaluation{{Name: "upload-success", Met: false, Detail: "success ratio 0.9500 (floor 0.9900, 95 good / 5 bad)"}}
	}
	rec := httptest.NewRecorder()
	StatuszHandler(p, evals).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statusz", nil))
	body := rec.Body.String()
	for _, want := range []string{"degraded", "ledger", "slow commit path", "upload-success", "BREACHED"} {
		if !strings.Contains(body, want) {
			t.Errorf("statusz missing %q:\n%s", want, body)
		}
	}
}

func TestProberNilSafety(t *testing.T) {
	var p *Prober
	p.AddCheck("x", func() Health { return Healthy("") })
	if rep := p.Probe(); !rep.Ready || rep.Overall != StateOK {
		t.Fatal("nil prober must report ready")
	}
	rec := httptest.NewRecorder()
	ReadyzHandler(nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("nil prober readyz status %d, want 200", rec.Code)
	}
}
