package monitor

import (
	"strings"
	"testing"
	"time"

	"healthcloud/internal/audit"
	"healthcloud/internal/telemetry"
)

// newTestWatchdog wires a watchdog over one controllable probe and a
// DLQ-style delta objective.
func newTestWatchdog(t *testing.T) (*Watchdog, *telemetry.Registry, *audit.Log, *ProbeState) {
	t.Helper()
	reg := telemetry.NewRegistry()
	h := NewHistory(reg, 32)
	ev := NewEvaluator(h, []Objective{
		{Name: "dlq-empty", Kind: DeltaObjective, Counter: "dead_lettered_total", MaxDelta: 0},
	})
	state := StateOK
	p := NewProber()
	p.AddCheck("store", func() Health { return Health{State: state, Detail: "lake"} })
	log := audit.NewLog()
	w := NewWatchdog(WatchdogConfig{
		History: h, Evaluator: ev, Prober: p, Audit: log,
		Tracer: telemetry.NewTracer(16, 16),
	})
	return w, reg, log, &state
}

func TestWatchdogRaisesAndClearsAlerts(t *testing.T) {
	w, reg, log, state := newTestWatchdog(t)

	rep := w.Tick()
	if len(rep.Raised) != 0 || len(w.ActiveAlerts()) != 0 {
		t.Fatalf("healthy tick raised %+v", rep.Raised)
	}

	// Fault: probe degrades and the DLQ counter moves.
	*state = StateDegraded
	reg.Counter("dead_lettered_total").Inc()
	rep = w.Tick()
	if len(rep.Raised) != 2 {
		t.Fatalf("raised %d alerts, want 2 (probe + slo): %+v", len(rep.Raised), rep.Raised)
	}
	if len(w.ActiveAlerts()) != 2 {
		t.Fatalf("active = %+v", w.ActiveAlerts())
	}

	// Same fault persists: no duplicate raise events.
	reg.Counter("dead_lettered_total").Inc()
	rep = w.Tick()
	if len(rep.Raised) != 0 {
		t.Fatalf("persistent fault re-raised: %+v", rep.Raised)
	}

	// Recovery: probe heals and the DLQ counter stops moving long
	// enough to leave the objective window.
	*state = StateOK
	rep = w.Tick()
	if len(rep.Cleared) == 0 {
		t.Fatalf("recovery cleared nothing: %+v", rep)
	}

	raised := log.Find(audit.Query{Service: "monitor", Action: "alert-raised"})
	cleared := log.Find(audit.Query{Service: "monitor", Action: "alert-cleared"})
	if len(raised) != 2 {
		t.Fatalf("audit raised events = %d, want 2", len(raised))
	}
	if len(cleared) == 0 {
		t.Fatal("no audit cleared events")
	}
	for _, e := range raised {
		if !strings.Contains(e.Detail, "trace=") {
			t.Errorf("alert event not trace-correlated: %+v", e)
		}
		if e.Actor != "watchdog" || e.Resource == "" {
			t.Errorf("malformed alert event: %+v", e)
		}
	}
}

func TestWatchdogSeverityTracksProbeState(t *testing.T) {
	w, _, log, state := newTestWatchdog(t)
	*state = StateDown
	w.Tick()
	events := log.Find(audit.Query{Service: "monitor", Action: "alert-raised"})
	if len(events) != 1 || events[0].Level != audit.LevelError {
		t.Fatalf("down probe should raise at error level: %+v", events)
	}
}

func TestWatchdogStartStop(t *testing.T) {
	w, _, _, _ := newTestWatchdog(t)
	w.Start(2 * time.Millisecond)
	w.Start(2 * time.Millisecond) // double start is a no-op
	deadline := time.Now().Add(2 * time.Second)
	for w.Ticks() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	w.Stop()
	w.Stop() // double stop is safe
	if w.Ticks() < 3 {
		t.Fatalf("watchdog only ticked %d times", w.Ticks())
	}
	after := w.Ticks()
	time.Sleep(10 * time.Millisecond)
	if w.Ticks() != after {
		t.Fatal("watchdog kept ticking after Stop")
	}
}

func TestWatchdogNilSafety(t *testing.T) {
	var w *Watchdog
	w.Start(time.Millisecond)
	w.Stop()
	if rep := w.Tick(); rep.Tick != 0 {
		t.Fatal("nil watchdog must no-op")
	}
	if w.ActiveAlerts() != nil || w.Ticks() != 0 {
		t.Fatal("nil watchdog accessors must return zero values")
	}

	// A watchdog with every piece nil still ticks without panicking.
	empty := NewWatchdog(WatchdogConfig{})
	if rep := empty.Tick(); rep.Tick != 1 {
		t.Fatalf("empty watchdog tick = %+v", rep)
	}
}

func TestMonitorBundleNilSafety(t *testing.T) {
	var m *Monitor
	if m.History() != nil || m.Evaluator() != nil || m.Prober() != nil || m.Watchdog() != nil {
		t.Fatal("nil monitor accessors must return nil")
	}
}
