package admission

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"healthcloud/internal/telemetry"
)

// TestAdmissionStress hammers one controller from 16 goroutines across
// a handful of tenants while the backlog depth and completion counter
// move underneath it — the shape CI runs 3x under -race. The assertions
// are conservation laws, not timing: every Admit lands in exactly one
// outcome bucket, and critical traffic is never refused.
func TestAdmissionStress(t *testing.T) {
	const (
		workers   = 16
		perWorker = 2000
	)
	var depth atomic.Int64
	var completed atomic.Uint64
	reg := telemetry.NewRegistry()
	ctrl := New(Config{
		DefaultPerSec: 500, DefaultBurst: 1000,
		BulkDepth: 64, NormalDepth: 256,
		Registry: reg,
		Estimator: NewDrainEstimator(
			func() int { return int(depth.Load()) },
			func() uint64 { return completed.Load() },
			nil),
		Quotas: func(tenant string) (float64, float64, bool) {
			if tenant == "tenant-0" {
				return 50, 100, true // one deliberately tight quota
			}
			return 0, 0, false
		},
	})

	var admitted, limited, shedCount, criticalDenied atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", w%4)
			for i := 0; i < perWorker; i++ {
				class := Class(i % 3)
				d := ctrl.Admit(tenant, class)
				switch {
				case d.Allowed:
					admitted.Add(1)
				case d.Reason == ReasonRateLimit:
					limited.Add(1)
				case d.Reason == ReasonQueueFull:
					shedCount.Add(1)
				default:
					t.Errorf("decision with no outcome: %+v", d)
				}
				if class == ClassCritical && !d.Allowed {
					criticalDenied.Add(1)
				}
				if !d.Allowed {
					if ra := d.RetryAfterSeconds(); ra < 1 || ra > 30 {
						t.Errorf("retry-after %ds outside [1,30]", ra)
					}
				}
				// Move the world: backlog oscillates across both shed
				// thresholds, service keeps completing work, and one
				// worker keeps perturbing the snapshot/collector paths.
				depth.Store(int64((i * 7) % 512))
				completed.Add(1)
				if w == 0 && i%64 == 0 {
					ctrl.Collect()
					_ = ctrl.Snap()
				}
			}
		}(w)
	}
	wg.Wait()

	total := admitted.Load() + limited.Load() + shedCount.Load()
	if want := uint64(workers * perWorker); total != want {
		t.Fatalf("outcome conservation broken: %d accounted, want %d", total, want)
	}
	if criticalDenied.Load() != 0 {
		t.Fatalf("%d critical requests denied under contention", criticalDenied.Load())
	}
	if admitted.Load() == 0 {
		t.Fatal("nothing admitted — controller wedged")
	}
	if s := ctrl.Snap(); s.Tenants != 4 {
		t.Fatalf("tenant buckets = %d, want 4", s.Tenants)
	}
}

// TestTokenBucketStress races Take against concurrent SetRate quota
// swings and checks the bucket never over-grants: with total refill
// bounded above by maxRate*elapsed + maxBurst, grants must stay under
// that budget.
func TestTokenBucketStress(t *testing.T) {
	const (
		workers  = 16
		duration = 100 * time.Millisecond
		maxRate  = 1000.0
		maxBurst = 200.0
	)
	b := NewTokenBucket(maxRate, maxBurst, nil)
	start := time.Now()
	deadline := start.Add(duration)
	var grants atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				if w == 0 && i%100 == 0 {
					// Oscillate the quota, never above the accounting cap.
					b.SetRate(maxRate/float64(1+i%4), maxBurst/float64(1+i%2))
				}
				if ok, _ := b.Take(1); ok {
					grants.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	budget := maxRate*elapsed + maxBurst + 1
	if g := float64(grants.Load()); g > budget {
		t.Fatalf("over-grant: %v tokens granted, budget %v over %vs", g, budget, elapsed)
	}
}

// TestDrainEstimatorStress races ServiceRate/DrainTime readers against
// a moving counter; the estimate must stay finite and non-negative.
func TestDrainEstimatorStress(t *testing.T) {
	var depth atomic.Int64
	var completed atomic.Uint64
	e := NewDrainEstimator(
		func() int { return int(depth.Load()) },
		func() uint64 { return completed.Load() },
		nil)
	deadline := time.Now().Add(100 * time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				completed.Add(3)
				depth.Add(1)
				if r := e.ServiceRate(); r < 0 {
					t.Errorf("negative service rate %v", r)
					return
				}
				if d := e.DrainTime(); d < 0 {
					t.Errorf("negative drain time %v", d)
					return
				}
				if ra := e.RetryAfterSeconds(); ra < 1 || ra > 30 {
					t.Errorf("retry hint %d outside [1,30]", ra)
					return
				}
			}
		}()
	}
	wg.Wait()
}
