// Package admission is the platform's admission-control layer: the
// piece that keeps heavy open-loop traffic (ROADMAP item 4) from
// collapsing the goodput the rest of the system worked for. Closed-loop
// clients wait for acks; real enterprise-tenant fleets (§II-B metering
// and tenancy) arrive at a rate, and when that rate exceeds capacity the
// only choice is *which* work to refuse and *how honestly* to say so.
//
// Three mechanisms compose, all O(1) on the request path:
//
//   - Per-tenant token buckets, refilled from metering-backed quotas
//     (the Registration Service's tenancy contract): a tenant bursting
//     past its purchased rate is answered 429 with the exact time its
//     next token arrives.
//   - Queue-depth load shedding: when the ingest backlog crosses a
//     class's depth limit, new work of that class is answered 503 with
//     a Retry-After computed from the *measured* drain time (queue
//     depth ÷ observed service rate, clamped) — an honest hint, not a
//     constant.
//   - Priority classes: health probes and consent revocations
//     (ClassCritical) are never shed behind bulk ingest (ClassBulk);
//     interactive reads (ClassNormal) survive deeper backlogs than bulk
//     writes do.
//
// Everything is nil-safe: a nil *Controller admits everything at zero
// cost, so the disabled configuration is byte-identical to a platform
// built before this package existed (same contract as telemetry and
// faultinject).
package admission

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"healthcloud/internal/telemetry"
)

// Class is a request's priority class. Ordering matters: lower values
// survive deeper backlogs.
type Class int

// Priority classes, from most to least protected.
const (
	// ClassCritical is control-plane traffic whose delay has
	// correctness consequences: health probes, consent revocations.
	// Critical requests are never rate limited and never shed.
	ClassCritical Class = iota
	// ClassNormal is interactive traffic: queries, status polls,
	// analytics reads. Shed only when the backlog is severe.
	ClassNormal
	// ClassBulk is throughput traffic: ingest uploads, client
	// registration bursts. First to shed under overload.
	ClassBulk
)

// String returns the class's metric label.
func (c Class) String() string {
	switch c {
	case ClassCritical:
		return "critical"
	case ClassNormal:
		return "normal"
	case ClassBulk:
		return "bulk"
	default:
		return fmt.Sprintf("class-%d", int(c))
	}
}

// Rejection reasons carried on decisions and metric labels.
const (
	ReasonRateLimit = "rate-limit" // token bucket empty → 429
	ReasonQueueFull = "queue-full" // backlog over the class limit → 503
)

// Sentinel errors for non-HTTP callers (the enhanced-client server
// surface); errors.Is matches them through Decision.Err.
var (
	ErrRateLimited = errors.New("admission: tenant over rate quota")
	ErrShed        = errors.New("admission: shed under load")
)

// Decision is the outcome of one admission check.
type Decision struct {
	Allowed bool
	// Reason is ReasonRateLimit or ReasonQueueFull when rejected.
	Reason string
	// RetryAfter is the honest wait hint for a rejected request: time
	// until the tenant's next token (rate limit) or the estimated queue
	// drain time (shed). Always >= 1s for rejected requests so clients
	// get a usable integer header.
	RetryAfter time.Duration
}

// RetryAfterSeconds renders the hint for a Retry-After header (>= 1).
func (d Decision) RetryAfterSeconds() int {
	secs := int((d.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Err converts a rejected decision into its sentinel error (nil when
// allowed), for callers without an HTTP status line to answer on.
func (d Decision) Err() error {
	switch {
	case d.Allowed:
		return nil
	case d.Reason == ReasonRateLimit:
		return fmt.Errorf("%w (retry after %v)", ErrRateLimited, d.RetryAfter)
	default:
		return fmt.Errorf("%w (retry after %v)", ErrShed, d.RetryAfter)
	}
}

// QuotaFunc resolves a tenant's purchased rate: requests/sec refill and
// burst depth. ok=false falls back to the controller's default quota.
// The platform wires this to the metering system's quota table, so the
// bucket a tenant drains is the one their plan paid for.
type QuotaFunc func(tenant string) (perSec, burst float64, ok bool)

// Config sizes a Controller.
type Config struct {
	// DefaultPerSec/DefaultBurst apply to tenants without a metered
	// quota (defaults 200/s, 2x burst).
	DefaultPerSec float64
	DefaultBurst  float64
	// Quotas, when set, overrides the default per tenant.
	Quotas QuotaFunc
	// Estimator provides queue depth and drain-time estimates; nil
	// disables queue shedding (buckets still apply).
	Estimator *DrainEstimator
	// BulkDepth is the ingest backlog above which ClassBulk sheds
	// (default 256). NormalDepth is the deeper limit for ClassNormal
	// (default 4x BulkDepth). ClassCritical never sheds.
	BulkDepth   int
	NormalDepth int
	// Registry wires the limiter/shed counters and gauges; nil disables
	// metrics at zero cost.
	Registry *telemetry.Registry
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
}

// Controller is the admission decision point. Construct with New; a nil
// *Controller admits everything.
type Controller struct {
	cfg Config
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*TokenBucket

	// Metric handles are resolved once at construction so Admit pays
	// only nil checks and atomics.
	admitted   [3]*telemetry.Counter // by class
	rateLtd    [3]*telemetry.Counter
	shed       [3]*telemetry.Counter
	retryHint  *telemetry.Histogram
	depthGauge *telemetry.Gauge
	shedGauge  *telemetry.Gauge
}

// New builds a controller. Zero-value config fields get defaults.
func New(cfg Config) *Controller {
	if cfg.DefaultPerSec <= 0 {
		cfg.DefaultPerSec = 200
	}
	if cfg.DefaultBurst <= 0 {
		cfg.DefaultBurst = 2 * cfg.DefaultPerSec
	}
	if cfg.BulkDepth <= 0 {
		cfg.BulkDepth = 256
	}
	if cfg.NormalDepth <= 0 {
		cfg.NormalDepth = 4 * cfg.BulkDepth
	}
	if cfg.NormalDepth < cfg.BulkDepth {
		cfg.NormalDepth = cfg.BulkDepth
	}
	c := &Controller{cfg: cfg, now: cfg.Clock, buckets: make(map[string]*TokenBucket)}
	if c.now == nil {
		c.now = time.Now
	}
	if reg := cfg.Registry; reg != nil {
		for _, class := range []Class{ClassCritical, ClassNormal, ClassBulk} {
			c.admitted[class] = reg.Counter(fmt.Sprintf("admission_admitted_total{class=%q}", class))
			c.rateLtd[class] = reg.Counter(fmt.Sprintf("admission_rejected_total{class=%q,reason=%q}", class, ReasonRateLimit))
			c.shed[class] = reg.Counter(fmt.Sprintf("admission_rejected_total{class=%q,reason=%q}", class, ReasonQueueFull))
		}
		c.retryHint = reg.Histogram("admission_retry_after_seconds")
		c.depthGauge = reg.Gauge("admission_queue_depth")
		c.shedGauge = reg.Gauge("admission_shedding")
	}
	return c
}

// bucket returns the tenant's token bucket, creating it from the
// metered quota (or the default) on first use and refreshing its rate
// when the quota table changed since.
func (c *Controller) bucket(tenant string) *TokenBucket {
	perSec, burst := c.cfg.DefaultPerSec, c.cfg.DefaultBurst
	if c.cfg.Quotas != nil {
		if r, b, ok := c.cfg.Quotas(tenant); ok && r > 0 {
			perSec = r
			if b > 0 {
				burst = b
			} else {
				burst = 2 * r
			}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.buckets[tenant]
	if !ok {
		b = NewTokenBucket(perSec, burst, c.now)
		c.buckets[tenant] = b
		return b
	}
	// Quota updates (a plan change mid-flight) take effect on the next
	// admission, not the next restart.
	b.SetRate(perSec, burst)
	return b
}

// Admit decides one request. A nil controller admits everything — the
// disabled configuration stays byte-identical.
func (c *Controller) Admit(tenant string, class Class) Decision {
	if c == nil {
		return Decision{Allowed: true}
	}
	if class != ClassCritical {
		// Per-tenant rate first: fairness between tenants is decided
		// before the shared queue is considered.
		if ok, wait := c.bucket(tenant).Take(1); !ok {
			d := Decision{Reason: ReasonRateLimit, RetryAfter: clampRetry(wait)}
			if ctr := c.rateLtd[class]; ctr != nil {
				ctr.Inc()
				c.retryHint.Observe(d.RetryAfter)
			}
			return d
		}
		if est := c.cfg.Estimator; est != nil {
			limit := c.cfg.NormalDepth
			if class == ClassBulk {
				limit = c.cfg.BulkDepth
			}
			if depth := est.Depth(); depth >= limit {
				d := Decision{Reason: ReasonQueueFull, RetryAfter: clampRetry(est.DrainTime())}
				if ctr := c.shed[class]; ctr != nil {
					ctr.Inc()
					c.retryHint.Observe(d.RetryAfter)
				}
				return d
			}
		}
	}
	if ctr := c.admitted[class]; ctr != nil {
		ctr.Inc()
	}
	return Decision{Allowed: true}
}

// maxRetryAfter caps the hint: past this the estimate says more about
// the estimator than about the queue, and clients should re-probe.
const maxRetryAfter = 30 * time.Second

// clampRetry bounds a wait hint into [1s, maxRetryAfter]: honest but
// always actionable as an integer Retry-After header.
func clampRetry(d time.Duration) time.Duration {
	if d < time.Second {
		return time.Second
	}
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	return d
}

// Snapshot is the controller's live state for probes and status pages.
type Snapshot struct {
	QueueDepth  int     `json:"queue_depth"`
	BulkDepth   int     `json:"bulk_depth_limit"`
	NormalDepth int     `json:"normal_depth_limit"`
	ServiceRate float64 `json:"service_rate_per_sec"`
	Shedding    bool    `json:"shedding"` // bulk class currently over its limit
	Tenants     int     `json:"tenants"`  // buckets instantiated
}

// Snap reports the controller's current view (zero value on nil).
func (c *Controller) Snap() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	s := Snapshot{BulkDepth: c.cfg.BulkDepth, NormalDepth: c.cfg.NormalDepth}
	if est := c.cfg.Estimator; est != nil {
		s.QueueDepth = est.Depth()
		s.ServiceRate = est.ServiceRate()
		s.Shedding = s.QueueDepth >= s.BulkDepth
	}
	c.mu.Lock()
	s.Tenants = len(c.buckets)
	c.mu.Unlock()
	return s
}

// Collect copies pull-style values into gauges — wired as a monitor
// collector so /metrics and the history ring see queue depth and shed
// state without per-request cost. Nil-safe.
func (c *Controller) Collect() {
	if c == nil || c.depthGauge == nil {
		return
	}
	s := c.Snap()
	c.depthGauge.Set(int64(s.QueueDepth))
	var shedding int64
	if s.Shedding {
		shedding = 1
	}
	c.shedGauge.Set(shedding)
}
