package admission

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"healthcloud/internal/telemetry"
)

// fakeClock is a manually advanced clock shared by a test's bucket,
// estimator and controller so every timing assertion is deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTokenBucketTakeAndRefill(t *testing.T) {
	clk := newClock()
	b := NewTokenBucket(10, 5, clk.Now) // 10/s refill, 5 burst
	for i := 0; i < 5; i++ {
		if ok, _ := b.Take(1); !ok {
			t.Fatalf("take %d of burst rejected", i)
		}
	}
	ok, wait := b.Take(1)
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	// 10/s refill: one token arrives in 100ms, and the hint says so.
	if want := 100 * time.Millisecond; wait != want {
		t.Fatalf("retry hint = %v, want %v", wait, want)
	}
	clk.Advance(100 * time.Millisecond)
	if ok, _ := b.Take(1); !ok {
		t.Fatal("token not refilled after the hinted wait")
	}
	// Refill caps at burst no matter how long the idle gap.
	clk.Advance(time.Hour)
	if got := b.Tokens(); got != 5 {
		t.Fatalf("tokens after long idle = %v, want burst 5", got)
	}
}

func TestTokenBucketSetRate(t *testing.T) {
	clk := newClock()
	b := NewTokenBucket(1, 10, clk.Now)
	b.Take(10) // drain
	clk.Advance(2 * time.Second)
	b.SetRate(100, 4) // plan change: faster refill, smaller burst
	// The 2s under the old 1/s rate refilled 2 tokens; burst clamp to 4
	// can't manufacture more than were earned.
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens after rate change = %v, want 2", got)
	}
	clk.Advance(time.Second)
	if got := b.Tokens(); got != 4 {
		t.Fatalf("tokens under new rate = %v, want burst-capped 4", got)
	}
}

func TestDrainEstimatorTracksServiceRate(t *testing.T) {
	clk := newClock()
	var depth int
	var completed uint64
	e := NewDrainEstimator(func() int { return depth }, func() uint64 { return completed }, clk.Now)

	if got := e.ServiceRate(); got != 0 {
		t.Fatalf("cold-start rate = %v, want 0", got)
	}
	if got := e.RetryAfterSeconds(); got != 1 {
		t.Fatalf("cold-start retry hint = %d, want the 1s floor", got)
	}
	// 100 completions over 1s → 100/s.
	completed, depth = 100, 200
	clk.Advance(time.Second)
	if got := e.ServiceRate(); got != 100 {
		t.Fatalf("first-interval rate = %v, want 100", got)
	}
	// 200 backlog at 100/s drains in 2s.
	if got := e.DrainTime(); got != 2*time.Second {
		t.Fatalf("drain time = %v, want 2s", got)
	}
	if got := e.RetryAfterSeconds(); got != 2 {
		t.Fatalf("retry hint = %d, want 2", got)
	}
	// A huge backlog clamps at the 30s ceiling.
	depth = 1 << 20
	if got := e.RetryAfterSeconds(); got != 30 {
		t.Fatalf("clamped hint = %d, want 30", got)
	}
	// Sub-interval calls reuse the estimate instead of thrashing it.
	clk.Advance(10 * time.Millisecond)
	if got := e.ServiceRate(); got != 100 {
		t.Fatalf("rate resampled below min interval: %v", got)
	}
	// The EWMA moves toward a sustained change without jumping to it.
	clk.Advance(time.Second)
	completed += 300 // 300/s instant against a 100/s estimate
	got := e.ServiceRate()
	if got <= 100 || got >= 300 {
		t.Fatalf("EWMA after rate shift = %v, want between 100 and 300", got)
	}
}

// controllerFixture wires a controller over a manual clock, a mutable
// queue depth, and a completion counter that models a steady 100/s
// service rate when advanced.
type controllerFixture struct {
	clk       *fakeClock
	depth     int
	completed uint64
	reg       *telemetry.Registry
	ctrl      *Controller
}

func newController(t *testing.T, mutate func(*Config)) *controllerFixture {
	t.Helper()
	f := &controllerFixture{clk: newClock(), reg: telemetry.NewRegistry()}
	cfg := Config{
		DefaultPerSec: 10, DefaultBurst: 5,
		BulkDepth: 10, NormalDepth: 40,
		Registry: f.reg, Clock: f.clk.Now,
		Estimator: NewDrainEstimator(func() int { return f.depth },
			func() uint64 { return f.completed }, f.clk.Now),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f.ctrl = New(cfg)
	return f
}

// observeRate teaches the estimator a 100/s service rate.
func (f *controllerFixture) observeRate() {
	f.clk.Advance(time.Second)
	f.completed += 100
	f.ctrl.cfg.Estimator.ServiceRate()
}

func TestControllerRateLimitsPerTenant(t *testing.T) {
	f := newController(t, nil)
	for i := 0; i < 5; i++ {
		if d := f.ctrl.Admit("tenant-a", ClassBulk); !d.Allowed {
			t.Fatalf("burst request %d rejected: %+v", i, d)
		}
	}
	d := f.ctrl.Admit("tenant-a", ClassBulk)
	if d.Allowed || d.Reason != ReasonRateLimit {
		t.Fatalf("over-quota decision = %+v, want rate-limit rejection", d)
	}
	if d.RetryAfterSeconds() < 1 {
		t.Fatalf("retry hint %d below the 1s floor", d.RetryAfterSeconds())
	}
	if !errors.Is(d.Err(), ErrRateLimited) {
		t.Fatalf("Err() = %v, want ErrRateLimited", d.Err())
	}
	// Tenant isolation: another tenant's bucket is untouched.
	if d := f.ctrl.Admit("tenant-b", ClassBulk); !d.Allowed {
		t.Fatalf("tenant-b caught tenant-a's limit: %+v", d)
	}
	// Tokens return with time.
	f.clk.Advance(time.Second)
	if d := f.ctrl.Admit("tenant-a", ClassBulk); !d.Allowed {
		t.Fatalf("tenant-a still limited after refill window: %+v", d)
	}
}

func TestControllerQuotaFuncOverridesDefault(t *testing.T) {
	f := newController(t, func(c *Config) {
		c.Quotas = func(tenant string) (float64, float64, bool) {
			if tenant == "gold" {
				return 1000, 2000, true
			}
			return 0, 0, false
		}
	})
	// Gold tenant: the metered quota's 2000 burst absorbs far more than
	// the 5-token default.
	for i := 0; i < 100; i++ {
		if d := f.ctrl.Admit("gold", ClassBulk); !d.Allowed {
			t.Fatalf("gold request %d rejected under metered quota: %+v", i, d)
		}
	}
	// Unknown tenant: default quota (burst 5) still applies.
	for i := 0; i < 5; i++ {
		f.ctrl.Admit("free", ClassBulk)
	}
	if d := f.ctrl.Admit("free", ClassBulk); d.Allowed {
		t.Fatal("default quota not enforced for unmetered tenant")
	}
}

func TestControllerShedsByClassDepth(t *testing.T) {
	f := newController(t, func(c *Config) {
		c.DefaultPerSec, c.DefaultBurst = 1e6, 1e6 // bucket out of the way
	})
	f.observeRate()

	f.depth = 9 // below every limit
	for _, class := range []Class{ClassCritical, ClassNormal, ClassBulk} {
		if d := f.ctrl.Admit("t", class); !d.Allowed {
			t.Fatalf("%s shed below limits: %+v", class, d)
		}
	}
	f.depth = 10 // at the bulk limit
	if d := f.ctrl.Admit("t", ClassBulk); d.Allowed {
		t.Fatal("bulk admitted at its depth limit")
	} else {
		if d.Reason != ReasonQueueFull {
			t.Fatalf("reason = %q, want queue-full", d.Reason)
		}
		if !errors.Is(d.Err(), ErrShed) {
			t.Fatalf("Err() = %v, want ErrShed", d.Err())
		}
	}
	if d := f.ctrl.Admit("t", ClassNormal); !d.Allowed {
		t.Fatalf("normal shed at the bulk limit: %+v", d)
	}
	f.depth = 40 // at the normal limit
	if d := f.ctrl.Admit("t", ClassNormal); d.Allowed {
		t.Fatal("normal admitted at its depth limit")
	}
	// Critical is never shed, no matter the backlog.
	f.depth = 1 << 20
	if d := f.ctrl.Admit("t", ClassCritical); !d.Allowed {
		t.Fatalf("critical shed at depth %d: %+v", f.depth, d)
	}
}

func TestShedRetryAfterIsDrainEstimate(t *testing.T) {
	f := newController(t, func(c *Config) {
		c.DefaultPerSec, c.DefaultBurst = 1e6, 1e6
	})
	f.observeRate() // 100/s
	f.depth = 500   // 5s drain at 100/s
	d := f.ctrl.Admit("t", ClassBulk)
	if d.Allowed {
		t.Fatal("expected shed")
	}
	if d.RetryAfterSeconds() != 5 {
		t.Fatalf("retry hint = %ds, want the 5s drain estimate", d.RetryAfterSeconds())
	}
}

func TestControllerMetrics(t *testing.T) {
	f := newController(t, nil)
	f.observeRate()
	for i := 0; i < 7; i++ {
		f.ctrl.Admit("t", ClassBulk) // 5 admitted, 2 rate-limited
	}
	f.depth = 10
	f.clk.Advance(time.Second) // refill one bucket's worth
	f.ctrl.Admit("t", ClassBulk)
	f.ctrl.Collect()

	var buf strings.Builder
	if err := f.reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`admission_admitted_total{class="bulk"} 5`,
		`admission_rejected_total{class="bulk",reason="rate-limit"} 2`,
		`admission_rejected_total{class="bulk",reason="queue-full"} 1`,
		`admission_queue_depth 10`,
		`admission_shedding 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n%s", want, out)
		}
	}
}

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	if d := c.Admit("anyone", ClassBulk); !d.Allowed {
		t.Fatal("nil controller rejected a request")
	}
	if s := c.Snap(); s.QueueDepth != 0 || s.Shedding {
		t.Fatalf("nil snapshot = %+v", s)
	}
	c.Collect() // must not panic
	var e *DrainEstimator
	if e.Depth() != 0 || e.DrainTime() != 0 || e.RetryAfterSeconds() != 1 {
		t.Fatal("nil estimator not inert")
	}
}

func TestDecisionRetryAfterSecondsRoundsUp(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want int
	}{
		{0, 1}, {time.Second, 1}, {1500 * time.Millisecond, 2}, {2 * time.Second, 2},
	}
	for _, c := range cases {
		if got := (Decision{RetryAfter: c.in}).RetryAfterSeconds(); got != c.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}
