package admission

import (
	"math"
	"sync"
	"time"
)

// DrainEstimator answers the question an overloaded server owes its
// clients: "when is it worth coming back?" It watches the ingest
// backlog (a live depth gauge) and the pipeline's completion counter,
// and keeps an exponentially weighted service-rate estimate sampled on
// demand — no goroutine, no timer; callers pay one mutex and a handful
// of float ops, and only when at least minSample has elapsed since the
// last sample.
//
// DrainTime = depth ÷ rate is the same estimate the shedding path and
// the transient-failure path share, replacing the hard-coded
// "Retry-After: 1" the HTTP layer used to answer.
type DrainEstimator struct {
	depth       func() int    // live backlog (nil = 0)
	completions func() uint64 // monotonic completed-work counter (nil = rate unknown)
	now         func() time.Time

	mu        sync.Mutex
	lastAt    time.Time
	lastCount uint64
	ewma      float64 // completions per second
	primed    bool
}

// Service-rate sampling constants: sample at most every minSample so
// hot paths cannot thrash the estimate with sub-millisecond deltas, and
// smooth over tau so one slow fsync doesn't whipsaw the hint.
const (
	estimatorMinSample = 100 * time.Millisecond
	estimatorTau       = 2 * time.Second
)

// NewDrainEstimator builds an estimator over a live depth source and a
// monotonic completion counter. clock overrides time.Now (nil = wall).
func NewDrainEstimator(depth func() int, completions func() uint64, clock func() time.Time) *DrainEstimator {
	if clock == nil {
		clock = time.Now
	}
	e := &DrainEstimator{depth: depth, completions: completions, now: clock}
	e.lastAt = clock()
	if completions != nil {
		e.lastCount = completions()
	}
	return e
}

// Depth reports the current backlog.
func (e *DrainEstimator) Depth() int {
	if e == nil || e.depth == nil {
		return 0
	}
	return e.depth()
}

// ServiceRate returns the smoothed completions/sec estimate, sampling
// the counter if enough time has passed. Zero until the first
// completion interval has been observed.
func (e *DrainEstimator) ServiceRate() float64 {
	if e == nil || e.completions == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	elapsed := now.Sub(e.lastAt)
	if elapsed < estimatorMinSample {
		return e.ewma
	}
	count := e.completions()
	inst := float64(count-e.lastCount) / elapsed.Seconds()
	e.lastAt, e.lastCount = now, count
	if !e.primed {
		// First observed interval seeds the estimate outright.
		e.ewma = inst
		e.primed = inst > 0
		return e.ewma
	}
	alpha := 1 - math.Exp(-elapsed.Seconds()/estimatorTau.Seconds())
	e.ewma += alpha * (inst - e.ewma)
	return e.ewma
}

// DrainTime estimates how long the current backlog needs to drain at
// the observed service rate. With no rate observed yet (cold start, or
// a fully wedged pipeline) it returns 0 and the caller's clamp turns
// that into the 1s floor — exactly the old static hint, degrading
// gracefully instead of guessing.
func (e *DrainEstimator) DrainTime() time.Duration {
	if e == nil {
		return 0
	}
	depth := e.Depth()
	rate := e.ServiceRate()
	if depth <= 0 || rate <= 0 {
		return 0
	}
	return time.Duration(float64(depth) / rate * float64(time.Second))
}

// RetryAfterSeconds renders the drain estimate as an integer header
// value, clamped into [1, 30] — the shared honest hint.
func (e *DrainEstimator) RetryAfterSeconds() int {
	return Decision{RetryAfter: clampRetry(e.DrainTime())}.RetryAfterSeconds()
}
