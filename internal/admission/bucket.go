package admission

import (
	"sync"
	"time"
)

// TokenBucket is a classic leaky-refill rate limiter: capacity `burst`
// tokens, refilled continuously at `rate` tokens/sec. Take is O(1) and
// lock-scoped to nanoseconds of float math, so a bucket per tenant on
// the request path costs less than the JSON decode that follows it.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewTokenBucket builds a full bucket. now overrides the clock for
// deterministic tests (nil = time.Now).
func NewTokenBucket(rate, burst float64, now func() time.Time) *TokenBucket {
	if now == nil {
		now = time.Now
	}
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

// refillLocked advances the bucket to the current instant.
func (b *TokenBucket) refillLocked(at time.Time) {
	if elapsed := at.Sub(b.last); elapsed > 0 {
		b.tokens += elapsed.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = at
}

// Take removes n tokens if available. When it cannot, it reports how
// long until n tokens will have refilled — the honest Retry-After.
func (b *TokenBucket) Take(n float64) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.now())
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	deficit := n - b.tokens
	return false, time.Duration(deficit / b.rate * float64(time.Second))
}

// SetRate applies a quota change. Tokens are first refilled under the
// old rate so a tenant is never retroactively charged, then clamped to
// the new burst.
func (b *TokenBucket) SetRate(rate, burst float64) {
	if rate <= 0 || burst < 1 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.now())
	b.rate, b.burst = rate, burst
	if b.tokens > burst {
		b.tokens = burst
	}
}

// Tokens reports the current fill (after refill) — for gauges and tests.
func (b *TokenBucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.now())
	return b.tokens
}
