package cloud

import (
	"errors"
	"testing"

	"healthcloud/internal/attest"
	"healthcloud/internal/audit"
	"healthcloud/internal/hckrypto"
)

// testCloud bundles the pieces most tests need.
type testCloud struct {
	cloud  *Cloud
	attSvc *attest.Service
	log    *audit.Log
	signer *hckrypto.SigningKey
}

func newTestCloud(t *testing.T) *testCloud {
	t.Helper()
	attSvc := attest.NewService()
	log := audit.NewLog()
	signer, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		t.Fatal(err)
	}
	attSvc.ApproveImageSigner(signer.Public())
	return &testCloud{cloud: New(attSvc, log), attSvc: attSvc, log: log, signer: signer}
}

func (tc *testCloud) image(t *testing.T, name string) Image {
	t.Helper()
	img, err := NewImage(name, []byte("content-of-"+name), tc.signer)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.cloud.Registry().Register(img); err != nil {
		t.Fatal(err)
	}
	return img
}

func TestImageRegistryRejectsUnapprovedSigner(t *testing.T) {
	tc := newTestCloud(t)
	rogue, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		t.Fatal(err)
	}
	img, err := NewImage("evil-os", []byte("payload"), rogue)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.cloud.Registry().Register(img); !errors.Is(err, ErrUnsignedImage) {
		t.Errorf("got %v, want ErrUnsignedImage", err)
	}
}

func TestImageRegistryRejectsTamperedImage(t *testing.T) {
	tc := newTestCloud(t)
	img, err := NewImage("os", []byte("original"), tc.signer)
	if err != nil {
		t.Fatal(err)
	}
	img.Digest[0] ^= 1 // content swapped after signing
	if err := tc.cloud.Registry().Register(img); !errors.Is(err, ErrUnsignedImage) {
		t.Errorf("got %v, want ErrUnsignedImage", err)
	}
}

func TestImageRegistryDuplicate(t *testing.T) {
	tc := newTestCloud(t)
	tc.image(t, "os")
	img, _ := NewImage("os", []byte("other"), tc.signer)
	if err := tc.cloud.Registry().Register(img); !errors.Is(err, ErrExists) {
		t.Errorf("got %v, want ErrExists", err)
	}
	if _, err := tc.cloud.Registry().Get("ghost"); !errors.Is(err, ErrNoSuchImage) {
		t.Errorf("Get ghost: %v", err)
	}
}

func TestProvisionHostAndAttestVM(t *testing.T) {
	tc := newTestCloud(t)
	tc.image(t, "guest-os")
	if _, err := tc.cloud.ProvisionHost("host-1", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.cloud.ProvisionHost("host-1", 4); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate host: %v", err)
	}
	if _, err := tc.cloud.ProvisionHost("host-x", 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := tc.cloud.LaunchVM("host-1", "vm-1", "guest-os"); err != nil {
		t.Fatal(err)
	}
	if err := tc.cloud.AttestVM("host-1", "vm-1"); err != nil {
		t.Fatalf("AttestVM: %v", err)
	}
	// Audit trail includes provisioning events.
	if got := tc.log.Find(audit.Query{Service: "provisioning"}); len(got) != 2 {
		t.Errorf("provisioning events = %d, want 2", len(got))
	}
}

func TestLaunchVMValidation(t *testing.T) {
	tc := newTestCloud(t)
	tc.image(t, "guest-os")
	tc.cloud.ProvisionHost("host-1", 1)
	if _, err := tc.cloud.LaunchVM("ghost", "vm", "guest-os"); !errors.Is(err, ErrNoSuchHost) {
		t.Errorf("unknown host: %v", err)
	}
	if _, err := tc.cloud.LaunchVM("host-1", "vm", "ghost-image"); !errors.Is(err, ErrNoSuchImage) {
		t.Errorf("unknown image: %v", err)
	}
	if _, err := tc.cloud.LaunchVM("host-1", "vm-1", "guest-os"); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.cloud.LaunchVM("host-1", "vm-1", "guest-os"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate VM: %v", err)
	}
	// Capacity 1 host refuses a second VM.
	if _, err := tc.cloud.LaunchVM("host-1", "vm-2", "guest-os"); !errors.Is(err, ErrCapacity) {
		t.Errorf("over capacity: %v", err)
	}
}

func TestContainerChainAttestation(t *testing.T) {
	tc := newTestCloud(t)
	tc.image(t, "guest-os")
	tc.image(t, "analytics-model")
	tc.cloud.ProvisionHost("host-1", 4)
	tc.cloud.LaunchVM("host-1", "vm-1", "guest-os")
	if _, err := tc.cloud.StartContainer("host-1", "vm-1", "ctr-1", "analytics-model"); err != nil {
		t.Fatal(err)
	}
	if err := tc.cloud.AttestContainer("host-1", "vm-1", "ctr-1"); err != nil {
		t.Fatalf("AttestContainer: %v", err)
	}
	if err := tc.cloud.AttestContainer("host-1", "vm-1", "ghost"); !errors.Is(err, ErrNoSuchContainer) {
		t.Errorf("unknown container: %v", err)
	}
	if _, err := tc.cloud.StartContainer("host-1", "vm-1", "ctr-1", "analytics-model"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate container: %v", err)
	}
}

func TestCompromisedVMFailsAttestation(t *testing.T) {
	tc := newTestCloud(t)
	tc.image(t, "guest-os")
	tc.cloud.ProvisionHost("host-1", 4)
	vm, err := tc.cloud.LaunchVM("host-1", "vm-1", "guest-os")
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.cloud.AttestVM("host-1", "vm-1"); err != nil {
		t.Fatalf("clean VM failed attestation: %v", err)
	}
	if err := vm.CompromiseVM(); err != nil {
		t.Fatal(err)
	}
	if err := tc.cloud.AttestVM("host-1", "vm-1"); !errors.Is(err, attest.ErrMeasurement) {
		t.Errorf("compromised VM: got %v, want ErrMeasurement", err)
	}
	// The compromise leaves an audit trail in the attestation history.
	history := tc.attSvc.History()
	last := history[len(history)-1]
	if last.Trusted {
		t.Error("last attestation decision should be untrusted")
	}
}

func TestUnapprovedContainerBreaksOnlyContainerLayer(t *testing.T) {
	tc := newTestCloud(t)
	tc.image(t, "guest-os")
	tc.image(t, "model-a")
	tc.cloud.ProvisionHost("host-1", 4)
	vm, _ := tc.cloud.LaunchVM("host-1", "vm-1", "guest-os")
	tc.cloud.StartContainer("host-1", "vm-1", "ctr-1", "model-a")
	if err := tc.cloud.AttestContainer("host-1", "vm-1", "ctr-1"); err != nil {
		t.Fatal(err)
	}
	// A sidecar starts without going through StartContainer (no golden
	// update): container layer must break, VM layer must still attest.
	if err := vm.vtpm.Extend(4 /* tpm.PCRContainer */, "rogue-sidecar", []byte("rogue")); err != nil {
		t.Fatal(err)
	}
	if err := tc.cloud.AttestVM("host-1", "vm-1"); err != nil {
		t.Errorf("VM layer broken by container drift: %v", err)
	}
	if err := tc.cloud.AttestContainer("host-1", "vm-1", "ctr-1"); err == nil {
		t.Error("container drift not detected")
	}
}

func TestVMsIsolatedAcrossHosts(t *testing.T) {
	tc := newTestCloud(t)
	tc.image(t, "guest-os")
	tc.cloud.ProvisionHost("host-1", 4)
	tc.cloud.ProvisionHost("host-2", 4)
	vm1, _ := tc.cloud.LaunchVM("host-1", "vm-1", "guest-os")
	tc.cloud.LaunchVM("host-2", "vm-1", "guest-os")
	vm1.CompromiseVM()
	if err := tc.cloud.AttestVM("host-1", "vm-1"); err == nil {
		t.Error("compromised VM attested")
	}
	if err := tc.cloud.AttestVM("host-2", "vm-1"); err != nil {
		t.Errorf("unrelated host's VM failed: %v", err)
	}
	if got := tc.cloud.Hosts(); len(got) != 2 || got[0] != "host-1" {
		t.Errorf("Hosts = %v", got)
	}
}
