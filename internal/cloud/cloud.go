// Package cloud simulates the Trusted Infrastructure Cloud of Figure 1:
// bare-metal hosts with (software) TPMs, a measured boot sequence that
// extends BIOS → hypervisor → guest kernel → libraries into PCRs
// (§II-A), an Image Management service that "accepts only those VM
// images that are signed by an approved list of keys managed by an
// attestation service", resource provisioning, and VM/container
// lifecycle with per-layer attestation.
//
// Substitution note (DESIGN.md): there is no physical datacenter; hosts,
// hypervisors, VMs, and containers are in-process objects, but the trust
// chain they carry is computed exactly as the paper describes, and every
// lifecycle event is measured and logged.
package cloud

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"sync"

	"healthcloud/internal/attest"
	"healthcloud/internal/audit"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/tpm"
)

// Errors returned by this package.
var (
	ErrUnsignedImage   = errors.New("cloud: image not signed by an approved key")
	ErrNoSuchImage     = errors.New("cloud: no such image")
	ErrNoSuchHost      = errors.New("cloud: no such host")
	ErrNoSuchVM        = errors.New("cloud: no such VM")
	ErrNoSuchContainer = errors.New("cloud: no such container")
	ErrExists          = errors.New("cloud: already exists")
	ErrCapacity        = errors.New("cloud: host capacity exhausted")
)

// Image is a VM or container image: content, digest, and signature.
type Image struct {
	Name      string
	Content   []byte // stand-in for the image filesystem
	Digest    []byte
	Signature []byte
	SignerFP  string
}

// NewImage builds and signs an image with the given key. The signer must
// later be on the attestation service's approved list for the image to
// be admitted.
func NewImage(name string, content []byte, signer hckrypto.Signer) (Image, error) {
	digest := sha256.Sum256(content)
	sig, err := hckrypto.SignEnvelope(signer, digest[:])
	if err != nil {
		return Image{}, fmt.Errorf("cloud: signing image: %w", err)
	}
	return Image{
		Name: name, Content: append([]byte(nil), content...),
		Digest: digest[:], Signature: sig,
		SignerFP: signer.Verifier().Fingerprint(),
	}, nil
}

// ImageRegistry is the Image Management service.
type ImageRegistry struct {
	attSvc *attest.Service

	mu     sync.RWMutex
	images map[string]Image
}

// NewImageRegistry creates a registry gated by the attestation service's
// approved-signer list.
func NewImageRegistry(attSvc *attest.Service) *ImageRegistry {
	return &ImageRegistry{attSvc: attSvc, images: make(map[string]Image)}
}

// Register admits an image if its signature verifies under an approved
// key.
func (r *ImageRegistry) Register(img Image) error {
	fp, err := r.attSvc.VerifyImageSignature(img.Digest, img.Signature)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnsignedImage, err)
	}
	if fp != img.SignerFP {
		return fmt.Errorf("%w: signer fingerprint mismatch", ErrUnsignedImage)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.images[img.Name]; ok {
		return fmt.Errorf("%w: image %q", ErrExists, img.Name)
	}
	r.images[img.Name] = img
	return nil
}

// Get returns an admitted image.
func (r *ImageRegistry) Get(name string) (Image, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	img, ok := r.images[name]
	if !ok {
		return Image{}, fmt.Errorf("%w: %q", ErrNoSuchImage, name)
	}
	return img, nil
}

// Container is a running workload inside a VM.
type Container struct {
	ID    string
	Image Image
	vmID  string
}

// VM is a guest with its own vTPM.
type VM struct {
	ID    string
	Image Image

	host *Host
	vtpm *tpm.TPM

	mu         sync.RWMutex
	containers map[string]*Container
}

// Host is one bare-metal server: hardware TPM, hypervisor, capacity.
type Host struct {
	Name     string
	Capacity int // max concurrent VMs

	tpm     *tpm.TPM
	vtpmMgr *tpm.VTPMManager

	mu  sync.RWMutex
	vms map[string]*VM
}

// Cloud is the infrastructure provider: provisioning, image management,
// attestation wiring, and audit logging.
type Cloud struct {
	attSvc   *attest.Service
	registry *ImageRegistry
	log      *audit.Log

	mu    sync.RWMutex
	hosts map[string]*Host
}

// New creates an empty cloud bound to an attestation service and audit
// log.
func New(attSvc *attest.Service, log *audit.Log) *Cloud {
	return &Cloud{
		attSvc:   attSvc,
		registry: NewImageRegistry(attSvc),
		log:      log,
		hosts:    make(map[string]*Host),
	}
}

// Registry returns the image-management service.
func (c *Cloud) Registry() *ImageRegistry { return c.registry }

// ProvisionHost racks a new server: its TPM is created and enrolled, the
// measured boot runs (CRTM/BIOS then hypervisor), and golden values for
// the hardware and hypervisor layers are recorded.
func (c *Cloud) ProvisionHost(name string, capacity int) (*Host, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cloud: capacity must be positive")
	}
	c.mu.Lock()
	if _, ok := c.hosts[name]; ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: host %q", ErrExists, name)
	}
	c.mu.Unlock()

	hostTPM, err := tpm.New(name)
	if err != nil {
		return nil, fmt.Errorf("cloud: provisioning TPM: %w", err)
	}
	c.attSvc.EnrollTPM(name, hostTPM.AttestationKey())
	// Measured boot: CRTM/BIOS first, then the hypervisor stack.
	if err := hostTPM.Extend(tpm.PCRBios, "crtm+bios", []byte("bios-v1")); err != nil {
		return nil, err
	}
	if err := hostTPM.Extend(tpm.PCRHypervisor, "hypervisor", []byte("hypervisor-v1")); err != nil {
		return nil, err
	}
	vtpmMgr, err := tpm.NewVTPMManager(hostTPM) // also measured into PCRHypervisor
	if err != nil {
		return nil, err
	}
	for layer, pcr := range map[attest.Layer]int{
		attest.LayerHardware:   tpm.PCRBios,
		attest.LayerHypervisor: tpm.PCRHypervisor,
	} {
		v, err := hostTPM.ReadPCR(pcr)
		if err != nil {
			return nil, err
		}
		if err := c.attSvc.SetGoldenValue(name, layer, v); err != nil {
			return nil, err
		}
	}
	h := &Host{Name: name, Capacity: capacity, tpm: hostTPM, vtpmMgr: vtpmMgr, vms: make(map[string]*VM)}
	c.mu.Lock()
	c.hosts[name] = h
	c.mu.Unlock()
	c.log.Record(audit.Event{Level: audit.LevelInfo, Service: "provisioning",
		Action: "provision-host", Resource: name})
	return h, nil
}

// Host returns a provisioned host.
func (c *Cloud) Host(name string) (*Host, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h, ok := c.hosts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchHost, name)
	}
	return h, nil
}

// Hosts lists provisioned host names, sorted.
func (c *Cloud) Hosts() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.hosts))
	for n := range c.hosts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LaunchVM boots a VM from an admitted image on the host: a vTPM is
// created and enrolled, the guest kernel and libraries are measured, and
// golden values for the guest layer are recorded.
func (c *Cloud) LaunchVM(hostName, vmID, imageName string) (*VM, error) {
	h, err := c.Host(hostName)
	if err != nil {
		return nil, err
	}
	img, err := c.registry.Get(imageName)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	if _, ok := h.vms[vmID]; ok {
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: VM %q", ErrExists, vmID)
	}
	if len(h.vms) >= h.Capacity {
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: host %q at %d VMs", ErrCapacity, hostName, h.Capacity)
	}
	h.mu.Unlock()

	vt, err := h.vtpmMgr.CreateInstance(vmID)
	if err != nil {
		return nil, err
	}
	c.attSvc.EnrollTPM(vt.Name(), vt.AttestationKey())
	// Guest measured boot: kernel from the image, then the library stack.
	if err := vt.Extend(tpm.PCRKernel, "guest-kernel", img.Digest); err != nil {
		return nil, err
	}
	if err := vt.Extend(tpm.PCRLibraries, "guest-libraries", []byte("baselibs-v1")); err != nil {
		return nil, err
	}
	v, err := vt.ReadPCR(tpm.PCRKernel)
	if err != nil {
		return nil, err
	}
	if err := c.attSvc.SetGoldenValue(vt.Name(), attest.LayerGuestOS, v); err != nil {
		return nil, err
	}
	vm := &VM{ID: vmID, Image: img, host: h, vtpm: vt, containers: make(map[string]*Container)}
	h.mu.Lock()
	h.vms[vmID] = vm
	h.mu.Unlock()
	c.log.Record(audit.Event{Level: audit.LevelInfo, Service: "provisioning",
		Action: "launch-vm", Resource: hostName + "/" + vmID, Detail: imageName})
	return vm, nil
}

// VM returns a running VM.
func (c *Cloud) VM(hostName, vmID string) (*VM, error) {
	h, err := c.Host(hostName)
	if err != nil {
		return nil, err
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	vm, ok := h.vms[vmID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchVM, vmID)
	}
	return vm, nil
}

// StartContainer runs an admitted container image inside the VM,
// measuring it into the vTPM's container PCR and recording the golden
// value, so the container layer attests (Fig 5).
func (c *Cloud) StartContainer(hostName, vmID, containerID, imageName string) (*Container, error) {
	vm, err := c.VM(hostName, vmID)
	if err != nil {
		return nil, err
	}
	img, err := c.registry.Get(imageName)
	if err != nil {
		return nil, err
	}
	vm.mu.Lock()
	if _, ok := vm.containers[containerID]; ok {
		vm.mu.Unlock()
		return nil, fmt.Errorf("%w: container %q", ErrExists, containerID)
	}
	vm.mu.Unlock()
	if err := vm.vtpm.Extend(tpm.PCRContainer, "container:"+containerID, img.Digest); err != nil {
		return nil, err
	}
	v, err := vm.vtpm.ReadPCR(tpm.PCRContainer)
	if err != nil {
		return nil, err
	}
	if err := c.attSvc.SetGoldenValue(vm.vtpm.Name(), attest.LayerContainer, v); err != nil {
		return nil, err
	}
	ctr := &Container{ID: containerID, Image: img, vmID: vmID}
	vm.mu.Lock()
	vm.containers[containerID] = ctr
	vm.mu.Unlock()
	c.log.Record(audit.Event{Level: audit.LevelInfo, Service: "provisioning",
		Action: "start-container", Resource: hostName + "/" + vmID + "/" + containerID, Detail: imageName})
	return ctr, nil
}

// AttestVM runs the transitive chain hardware → hypervisor → guest OS
// for a VM.
func (c *Cloud) AttestVM(hostName, vmID string) error {
	h, err := c.Host(hostName)
	if err != nil {
		return err
	}
	vm, err := c.VM(hostName, vmID)
	if err != nil {
		return err
	}
	return c.attSvc.AttestChain([]attest.ChainLink{
		{TPMName: h.Name, Layer: attest.LayerHardware, Quoter: h.tpm},
		{TPMName: h.Name, Layer: attest.LayerHypervisor, Quoter: h.tpm},
		{TPMName: vm.vtpm.Name(), Layer: attest.LayerGuestOS, Quoter: vm.vtpm},
	})
}

// AttestContainer extends AttestVM with the container layer — the full
// chain of Figure 5.
func (c *Cloud) AttestContainer(hostName, vmID, containerID string) error {
	vm, err := c.VM(hostName, vmID)
	if err != nil {
		return err
	}
	vm.mu.RLock()
	_, ok := vm.containers[containerID]
	vm.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchContainer, containerID)
	}
	if err := c.AttestVM(hostName, vmID); err != nil {
		return err
	}
	h, err := c.Host(hostName)
	if err != nil {
		return err
	}
	_ = h
	return c.attSvc.AttestChain([]attest.ChainLink{
		{TPMName: vm.vtpm.Name(), Layer: attest.LayerContainer, Quoter: vm.vtpm},
	})
}

// CompromiseVM simulates an in-guest attack for failure-injection tests:
// an unapproved measurement lands in the guest kernel PCR.
func (vm *VM) CompromiseVM() error {
	return vm.vtpm.Extend(tpm.PCRKernel, "unapproved-module", []byte("rootkit"))
}
