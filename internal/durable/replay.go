package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"healthcloud/internal/telemetry"
)

// ReplayInfo summarizes one directory replay, for the monitor's
// replay-status probe and E20's replay-time row.
type ReplayInfo struct {
	Files          int           // log files replayed
	Records        int           // valid frames applied
	TruncatedBytes int64         // torn-tail bytes cut from the final segment
	Duration       time.Duration // wall time of the replay
}

// replayDir reads every log file in dir in its logical order and
// invokes apply for each valid frame. Recovery rules:
//
//   - Compacted files subsume the segment range in their name; the
//     covering file with the largest range wins, older cmp files and
//     covered segments are deleted (they are crash leftovers of a
//     compaction that didn't finish its cleanup).
//   - tmp-*.log files are compactions that crashed before their atomic
//     rename; they are deleted unread.
//   - A bad frame in the FINAL segment is a torn tail if and only if
//     no complete valid frame exists after it: the tail is truncated at
//     the first bad byte and startup proceeds. If a valid frame does
//     follow the damage — or a bad frame appears in any non-final file,
//     including every compacted file (those are written whole and
//     renamed, so they have no tail to tear) — the damage is interior
//     corruption the log cannot explain, and replay refuses with
//     ErrCorrupt rather than serve a silently rewritten history.
//
// On success it returns the active segment number appends continue in.
func replayDir(dir string, tracer *telemetry.Tracer, met *segMetrics, apply func(Record) error) (ReplayInfo, int, error) {
	start := time.Now()
	span := tracer.StartRoot("durable.replay")
	if span != nil {
		span.SetAttr("dir", dir)
	}
	info, active, err := replayDirInner(dir, apply)
	info.Duration = time.Since(start)
	if span != nil {
		span.SetAttr("records", fmt.Sprint(info.Records))
		span.SetAttr("truncated_bytes", fmt.Sprint(info.TruncatedBytes))
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
	}
	if met != nil && err == nil {
		met.replayRecs.Add(uint64(info.Records))
		met.truncBytes.Add(uint64(info.TruncatedBytes))
	}
	return info, active, err
}

func replayDirInner(dir string, apply func(Record) error) (ReplayInfo, int, error) {
	var info ReplayInfo
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return info, 0, fmt.Errorf("durable: creating %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return info, 0, fmt.Errorf("durable: reading %s: %w", dir, err)
	}

	// Classify the directory: drop tmp leftovers, collect segments and
	// pick the widest compacted file.
	var segs []int
	bestCmpEnd, bestCmpStart := 0, 0
	bestCmp := ""
	var staleCmps []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if len(name) > 4 && name[:4] == "tmp-" {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if seq, ok := parseSeg(name); ok {
			segs = append(segs, seq)
			continue
		}
		if a, b, ok := parseCmp(name); ok {
			if b > bestCmpEnd {
				if bestCmp != "" {
					staleCmps = append(staleCmps, bestCmp)
				}
				bestCmp, bestCmpStart, bestCmpEnd = name, a, b
			} else {
				staleCmps = append(staleCmps, name)
			}
		}
	}
	_ = bestCmpStart
	for _, name := range staleCmps {
		os.Remove(filepath.Join(dir, name))
	}
	sort.Ints(segs)

	// Logical order: the covering compacted file first, then every
	// segment past its range. Segments inside the range are leftovers
	// of an interrupted compaction cleanup.
	type logFile struct {
		name  string
		final bool // the active segment — the only file allowed a torn tail
	}
	var order []logFile
	if bestCmp != "" {
		order = append(order, logFile{name: bestCmp})
	}
	live := segs[:0]
	for _, seq := range segs {
		if seq <= bestCmpEnd {
			os.Remove(filepath.Join(dir, segName(seq)))
			continue
		}
		live = append(live, seq)
	}
	for i, seq := range live {
		order = append(order, logFile{name: segName(seq), final: i == len(live)-1})
	}

	activeSeq := bestCmpEnd + 1
	if n := len(live); n > 0 {
		activeSeq = live[n-1]
	}

	for _, lf := range order {
		path := filepath.Join(dir, lf.name)
		data, err := os.ReadFile(path)
		if err != nil {
			return info, 0, fmt.Errorf("durable: reading %s: %w", lf.name, err)
		}
		recs, validEnd, ok := scanFrames(data)
		if !ok {
			if !lf.final {
				return info, 0, fmt.Errorf("%w: bad frame at %s:%d (sealed file)", ErrCorrupt, lf.name, validEnd)
			}
			// Final segment: a tear is only a tear if nothing valid
			// follows it. A later intact frame means the damage is in
			// the interior and truncating would rewrite history.
			if resyncFinds(data, validEnd) {
				return info, 0, fmt.Errorf("%w: bad frame at %s:%d with valid frames after it", ErrCorrupt, lf.name, validEnd)
			}
			cut := int64(len(data)) - int64(validEnd)
			if err := os.Truncate(path, int64(validEnd)); err != nil {
				return info, 0, fmt.Errorf("durable: truncating torn tail of %s: %w", lf.name, err)
			}
			info.TruncatedBytes += cut
		}
		for _, rec := range recs {
			if err := apply(rec); err != nil {
				return info, 0, fmt.Errorf("durable: replaying %s: %w", lf.name, err)
			}
			info.Records++
		}
		info.Files++
	}
	return info, activeSeq, nil
}
