// Package durable is the platform's file-backed, crash-recoverable
// persistence layer (ROADMAP item 3). It has two faces built on one
// framing substrate:
//
//   - a log-structured backend for store.DataLake: every mutation
//     (put, tombstone, evict, grant) is appended to CRC32C-framed
//     segment files before it is acknowledged, and the in-memory index
//     is rebuilt by replay on open;
//   - a write-ahead log for blockchain.Ledger: every committed block
//     is framed to the WAL before the world state applies it, and on
//     restart the chain and state map are replayed and hash-verified.
//
// Recovery follows the classic WAL discipline: a torn tail (the frame
// a crash interrupted) is truncated and startup proceeds; corruption
// anywhere else — a bad frame with intact frames after it, or any bad
// frame in a sealed segment or compacted file — is interior damage the
// log cannot explain, so the store refuses to open rather than serve a
// silently rewritten history. The KMS is deliberately not persisted
// here: the paper models it as a dedicated single-tenant (ideally
// hardware-backed) external system (§IV-B1), so its durability is the
// HSM's problem; this layer guarantees the ciphertexts and the
// provenance chain survive.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame kinds. The kind byte routes a payload to its decoder without
// parsing it: lake journal records and ledger blocks share the segment
// machinery but never share a directory.
const (
	// KindLake frames carry a store.JournalRecord (JSON).
	KindLake byte = 0x01
	// KindBlock frames carry a blockchain.Block (JSON).
	KindBlock byte = 0x02
	// KindSnapshot frames carry a blockchain.Snapshot (JSON): a ledger
	// world-state capture interleaved into the block WAL every K blocks
	// so restart replay can start from the latest snapshot instead of
	// block zero. A snapshot at height H sits between block H-1 and
	// block H in the log.
	KindSnapshot byte = 0x03
)

// frameMagic is the first byte of every frame — a cheap resync anchor
// when scanning damaged files.
const frameMagic byte = 0xD7

// frameHeaderSize is magic(1) + kind(1) + length(4) + crc32c(4).
const frameHeaderSize = 10

// maxFramePayload bounds a single record. Anything larger in a header
// is treated as corruption, not an allocation request — replaying an
// adversarial file must never OOM the platform.
const maxFramePayload = 16 << 20

// castagnoli is the CRC32C polynomial table (the iSCSI/ext4 checksum,
// hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by the framing and replay layer.
var (
	// ErrCorrupt marks interior corruption: damage replay cannot
	// attribute to a torn tail. The store refuses to open on it.
	ErrCorrupt = errors.New("durable: interior corruption")
	// errTornFrame is the internal marker for an incomplete or
	// CRC-failing frame at the position being read; replay converts it
	// into either a tail truncation or ErrCorrupt.
	errTornFrame = errors.New("durable: torn or corrupt frame")
	// ErrClosed is returned by appends after Close.
	ErrClosed = errors.New("durable: store closed")
	// ErrWedged is returned by appends after a torn write: the file
	// position can no longer be trusted, so the writer refuses further
	// appends until the store is reopened (which truncates the tear).
	ErrWedged = errors.New("durable: segment writer wedged by torn write")
)

// frameCRC computes the checksum a frame carries: kind, length and
// payload, so a corrupted length field fails verification instead of
// mis-slicing the file.
func frameCRC(kind byte, payload []byte) uint32 {
	var hdr [5]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, hdr[:])
	return crc32.Update(crc, castagnoli, payload)
}

// encodeFrame renders one frame: magic | kind | len | crc32c | payload.
func encodeFrame(kind byte, payload []byte) []byte {
	buf := make([]byte, frameHeaderSize+len(payload))
	buf[0] = frameMagic
	buf[1] = kind
	binary.LittleEndian.PutUint32(buf[2:6], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[6:10], frameCRC(kind, payload))
	copy(buf[frameHeaderSize:], payload)
	return buf
}

// Record is one replayed frame.
type Record struct {
	Kind    byte
	Payload []byte
}

// decodeFrameAt parses the frame starting at off in data. It returns
// the record and the offset just past it, or errTornFrame when the
// bytes at off are not a complete, checksum-valid frame.
func decodeFrameAt(data []byte, off int) (Record, int, error) {
	if off+frameHeaderSize > len(data) {
		return Record{}, 0, errTornFrame
	}
	if data[off] != frameMagic {
		return Record{}, 0, errTornFrame
	}
	kind := data[off+1]
	length := binary.LittleEndian.Uint32(data[off+2 : off+6])
	if length > maxFramePayload {
		return Record{}, 0, errTornFrame
	}
	end := off + frameHeaderSize + int(length)
	if end > len(data) || end < off {
		return Record{}, 0, errTornFrame
	}
	payload := data[off+frameHeaderSize : end]
	if binary.LittleEndian.Uint32(data[off+6:off+10]) != frameCRC(kind, payload) {
		return Record{}, 0, errTornFrame
	}
	return Record{Kind: kind, Payload: payload}, end, nil
}

// scanFrames walks data from offset 0, returning every valid frame and
// the offset where the valid prefix ends. ok is false when the prefix
// ends before EOF (a torn or corrupt frame starts at validEnd).
func scanFrames(data []byte) (recs []Record, validEnd int, ok bool) {
	off := 0
	for off < len(data) {
		rec, next, err := decodeFrameAt(data, off)
		if err != nil {
			return recs, off, false
		}
		// Copy the payload out: data is a whole-file read buffer that
		// replay callers may retain record-by-record.
		rec.Payload = append([]byte(nil), rec.Payload...)
		recs = append(recs, rec)
		off = next
	}
	return recs, off, true
}

// resyncFinds reports whether any complete, checksum-valid frame starts
// anywhere in data after offset from — the tail-vs-interior test. A
// torn tail is by definition the last thing written; if valid frames
// exist beyond the damage, the damage is interior and the file is
// untrustworthy.
func resyncFinds(data []byte, from int) bool {
	for off := from + 1; off+frameHeaderSize <= len(data); off++ {
		if data[off] != frameMagic {
			continue
		}
		if _, _, err := decodeFrameAt(data, off); err == nil {
			return true
		}
	}
	return false
}

// readAll slurps a file. Segments are bounded (rotation) so whole-file
// reads keep replay simple and fast.
func readAll(r io.Reader) ([]byte, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("durable: reading segment: %w", err)
	}
	return data, nil
}
