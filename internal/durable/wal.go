package durable

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"healthcloud/internal/blockchain"
)

// WAL is the write-ahead log for blockchain.Ledger world state: every
// committed block is framed to disk before any peer applies it, and
// OpenWAL returns the replayed chain for Ledger.Restore to verify and
// rebuild from. One WAL is shared by all peers of a network — each
// peer commits the same blocks in the same order from the ordered
// stream, so the WAL deduplicates by block number and hash, and an
// append of a same-numbered block with a different hash is surfaced as
// divergence instead of being silently dropped.
type WAL struct {
	seg  *SegmentStore
	info ReplayInfo

	mu        sync.Mutex
	hashByNum map[uint64]string
	next      uint64
}

var _ blockchain.BlockWAL = (*WAL)(nil)

// OpenWAL replays dir and opens the log for appending. The returned
// blocks are the verified replay input for Ledger.Restore on every
// peer. A torn tail (the block a crash interrupted mid-frame) is
// truncated — that block was never acknowledged, because commit waits
// for the WAL; interior corruption returns ErrCorrupt.
func OpenWAL(dir string, opt Options) (*WAL, []blockchain.Block, error) {
	var blocks []blockchain.Block
	met := newSegMetrics(opt.Registry)
	info, activeSeq, err := replayDir(dir, opt.Tracer, met, func(rec Record) error {
		if rec.Kind != KindBlock {
			return fmt.Errorf("unexpected frame kind 0x%02x in ledger wal", rec.Kind)
		}
		var b blockchain.Block
		if err := json.Unmarshal(rec.Payload, &b); err != nil {
			return fmt.Errorf("decoding block: %w", err)
		}
		blocks = append(blocks, b)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	w := &WAL{seg: nil, info: info, hashByNum: make(map[uint64]string, len(blocks))}
	for _, b := range blocks {
		if b.Number != w.next {
			return nil, nil, fmt.Errorf("%w: wal block %d out of order (want %d)", ErrCorrupt, b.Number, w.next)
		}
		w.hashByNum[b.Number] = hex.EncodeToString(b.Hash)
		w.next++
	}
	seg, err := openSegmentStore(dir, activeSeq, opt)
	if err != nil {
		return nil, nil, err
	}
	w.seg = seg
	return w, blocks, nil
}

// Append implements blockchain.BlockWAL. It blocks until the block's
// frame is durable, so AppendBlock's caller — and transitively the
// submitter's commit-wait — only ever sees a block that would survive
// a crash.
func (w *WAL) Append(b blockchain.Block) error {
	w.mu.Lock()
	if h, ok := w.hashByNum[b.Number]; ok {
		w.mu.Unlock()
		if h == hex.EncodeToString(b.Hash) {
			return nil // another peer already framed this block
		}
		return fmt.Errorf("durable: ledger divergence at block %d", b.Number)
	}
	if b.Number != w.next {
		w.mu.Unlock()
		return fmt.Errorf("durable: wal gap: block %d submitted, want %d", b.Number, w.next)
	}
	payload, err := json.Marshal(b)
	if err != nil {
		w.mu.Unlock()
		return fmt.Errorf("durable: encoding block: %w", err)
	}
	wait, err := w.seg.Append(KindBlock, payload)
	if err != nil {
		w.mu.Unlock()
		return err
	}
	w.hashByNum[b.Number] = hex.EncodeToString(b.Hash)
	w.next++
	w.mu.Unlock()
	return wait()
}

// ReplayInfo reports what OpenWAL replayed.
func (w *WAL) ReplayInfo() ReplayInfo { return w.info }

// Stats snapshots the underlying segment store, replay info included.
func (w *WAL) Stats() Stats {
	st := w.seg.Stats()
	st.ReplayedRecs = w.info.Records
	st.TruncatedLen = w.info.TruncatedBytes
	return st
}

// Wedged reports whether the writer refused after a torn write or
// failed fsync.
func (w *WAL) Wedged() bool { return w.seg.Wedged() }

// Sync flushes everything staged (graceful shutdown).
func (w *WAL) Sync() error { return w.seg.Sync() }

// Close syncs and closes the log.
func (w *WAL) Close() error { return w.seg.Close() }
