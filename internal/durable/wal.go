package durable

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"healthcloud/internal/blockchain"
)

// WAL is the write-ahead log for blockchain.Ledger world state: every
// committed block is framed to disk before any peer applies it, and
// OpenWAL returns the replayed chain for Ledger.Restore to verify and
// rebuild from. One WAL is shared by all peers of a network — each
// peer commits the same blocks in the same order from the ordered
// stream, so the WAL deduplicates by block number and hash, and an
// append of a same-numbered block with a different hash is surfaced as
// divergence instead of being silently dropped.
type WAL struct {
	seg  *SegmentStore
	info ReplayInfo

	mu         sync.Mutex
	hashByNum  map[uint64]string
	next       uint64
	snapHeight uint64 // highest snapshot framed (0 = none)
}

var _ blockchain.BlockWAL = (*WAL)(nil)
var _ blockchain.SnapshotWAL = (*WAL)(nil)

// WALReplay is what OpenWALSnapshot recovered: the latest world-state
// snapshot in the log (nil if none) plus every block after it — the
// two inputs Ledger.RestoreSnapshot verifies and rebuilds from. With
// no snapshot, Blocks is the full chain for Ledger.Restore.
type WALReplay struct {
	Snapshot *blockchain.Snapshot
	Blocks   []blockchain.Block
}

// OpenWAL replays dir and opens the log for appending. The returned
// blocks are the verified replay input for Ledger.Restore on every
// peer. A torn tail (the block a crash interrupted mid-frame) is
// truncated — that block was never acknowledged, because commit waits
// for the WAL; interior corruption returns ErrCorrupt. Snapshot
// frames in the log are validated but not returned: OpenWAL always
// yields the full chain, so pre-snapshot tooling and tests see
// byte-identical replay; OpenWALSnapshot is the bounded-replay opener.
func OpenWAL(dir string, opt Options) (*WAL, []blockchain.Block, error) {
	w, blocks, _, err := openWAL(dir, opt)
	return w, blocks, err
}

// OpenWALSnapshot is OpenWAL returning the latest snapshot plus only
// the blocks after it, so restart cost stays bounded as the chain
// grows (ledgers restore via RestoreSnapshot instead of replaying from
// block zero).
func OpenWALSnapshot(dir string, opt Options) (*WAL, WALReplay, error) {
	w, blocks, snap, err := openWAL(dir, opt)
	if err != nil {
		return nil, WALReplay{}, err
	}
	rep := WALReplay{Snapshot: snap, Blocks: blocks}
	if snap != nil {
		rep.Blocks = blocks[snap.Height:]
	}
	return w, rep, nil
}

func openWAL(dir string, opt Options) (*WAL, []blockchain.Block, *blockchain.Snapshot, error) {
	var blocks []blockchain.Block
	var snap *blockchain.Snapshot
	met := newSegMetrics(opt.Registry)
	info, activeSeq, err := replayDir(dir, opt.Tracer, met, func(rec Record) error {
		switch rec.Kind {
		case KindBlock:
			var b blockchain.Block
			if err := json.Unmarshal(rec.Payload, &b); err != nil {
				return fmt.Errorf("decoding block: %w", err)
			}
			blocks = append(blocks, b)
		case KindSnapshot:
			var s blockchain.Snapshot
			if err := json.Unmarshal(rec.Payload, &s); err != nil {
				return fmt.Errorf("decoding snapshot: %w", err)
			}
			// A snapshot at height H must sit right after block H-1;
			// anywhere else the log is internally inconsistent.
			if s.Height != uint64(len(blocks)) {
				return fmt.Errorf("snapshot at height %d after %d block(s)", s.Height, len(blocks))
			}
			snap = &s
		default:
			return fmt.Errorf("unexpected frame kind 0x%02x in ledger wal", rec.Kind)
		}
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	w := &WAL{seg: nil, info: info, hashByNum: make(map[uint64]string, len(blocks))}
	if snap != nil {
		w.snapHeight = snap.Height
	}
	for _, b := range blocks {
		if b.Number != w.next {
			return nil, nil, nil, fmt.Errorf("%w: wal block %d out of order (want %d)", ErrCorrupt, b.Number, w.next)
		}
		w.hashByNum[b.Number] = hex.EncodeToString(b.Hash)
		w.next++
	}
	seg, err := openSegmentStore(dir, activeSeq, opt)
	if err != nil {
		return nil, nil, nil, err
	}
	w.seg = seg
	return w, blocks, snap, nil
}

// Append implements blockchain.BlockWAL. It blocks until the block's
// frame is durable, so AppendBlock's caller — and transitively the
// submitter's commit-wait — only ever sees a block that would survive
// a crash.
func (w *WAL) Append(b blockchain.Block) error {
	w.mu.Lock()
	if h, ok := w.hashByNum[b.Number]; ok {
		w.mu.Unlock()
		if h == hex.EncodeToString(b.Hash) {
			return nil // another peer already framed this block
		}
		return fmt.Errorf("durable: ledger divergence at block %d", b.Number)
	}
	if b.Number != w.next {
		w.mu.Unlock()
		return fmt.Errorf("durable: wal gap: block %d submitted, want %d", b.Number, w.next)
	}
	payload, err := json.Marshal(b)
	if err != nil {
		w.mu.Unlock()
		return fmt.Errorf("durable: encoding block: %w", err)
	}
	wait, err := w.seg.Append(KindBlock, payload)
	if err != nil {
		w.mu.Unlock()
		return err
	}
	w.hashByNum[b.Number] = hex.EncodeToString(b.Hash)
	w.next++
	w.mu.Unlock()
	return wait()
}

// AppendSnapshot implements blockchain.SnapshotWAL. Snapshots are
// opportunistic: one is framed only when it lands exactly at the log's
// current height (between block Height-1 and block Height) and is
// newer than any snapshot already framed — otherwise it is silently
// skipped, because every peer of the network offers the same snapshot
// at the same boundary and the log has either already taken it or
// already moved past the boundary. Skipping is safe: the block stream
// alone always suffices to rebuild state.
func (w *WAL) AppendSnapshot(s blockchain.Snapshot) error {
	w.mu.Lock()
	if s.Height == 0 || s.Height != w.next || s.Height <= w.snapHeight {
		w.mu.Unlock()
		return nil
	}
	payload, err := json.Marshal(s)
	if err != nil {
		w.mu.Unlock()
		return fmt.Errorf("durable: encoding snapshot: %w", err)
	}
	wait, err := w.seg.Append(KindSnapshot, payload)
	if err != nil {
		w.mu.Unlock()
		return err
	}
	w.snapHeight = s.Height
	w.mu.Unlock()
	return wait()
}

// SnapshotHeight reports the height of the latest snapshot framed or
// replayed (0 = none).
func (w *WAL) SnapshotHeight() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.snapHeight
}

// ReplayInfo reports what OpenWAL replayed.
func (w *WAL) ReplayInfo() ReplayInfo { return w.info }

// Stats snapshots the underlying segment store, replay info included.
func (w *WAL) Stats() Stats {
	st := w.seg.Stats()
	st.ReplayedRecs = w.info.Records
	st.TruncatedLen = w.info.TruncatedBytes
	return st
}

// Wedged reports whether the writer refused after a torn write or
// failed fsync.
func (w *WAL) Wedged() bool { return w.seg.Wedged() }

// Sync flushes everything staged (graceful shutdown).
func (w *WAL) Sync() error { return w.seg.Sync() }

// Close syncs and closes the log.
func (w *WAL) Close() error { return w.seg.Close() }
