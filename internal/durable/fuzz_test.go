package durable

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"healthcloud/internal/blockchain"
)

// FuzzSegmentReplay feeds arbitrary bytes to the segment replayer as a
// final (active) segment and asserts the recovery invariants: never
// panic, never surface a frame whose checksum doesn't verify, and
// truncate-at-tail round-trips — after one recovery pass a second
// replay of the same directory is clean, sees the same records, and
// cuts nothing.
func FuzzSegmentReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeFrame(KindLake, []byte(`{"op":"put","sealed":{"ref_id":"a"}}`)))
	two := append(encodeFrame(KindLake, []byte("rec-1")), encodeFrame(KindBlock, []byte("rec-2"))...)
	f.Add(two)
	f.Add(two[:len(two)-4])             // torn tail
	f.Add(append([]byte{0x00}, two...)) // leading garbage, valid frames after
	big := encodeFrame(KindLake, []byte("x"))
	big[2] = 0xFF // absurd length field
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o600); err != nil {
			t.Skip()
		}
		var first []Record
		_, _, err := replayDir(dir, nil, nil, func(r Record) error {
			first = append(first, r)
			return nil
		})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("replay failed with non-corruption error: %v", err)
			}
			return // interior corruption: refusing is the contract
		}
		for _, r := range first {
			re := encodeFrame(r.Kind, r.Payload)
			if !bytes.Contains(data, re) {
				t.Fatalf("replay surfaced a frame not present verbatim in the input")
			}
		}
		var second []Record
		info, _, err := replayDir(dir, nil, nil, func(r Record) error {
			second = append(second, r)
			return nil
		})
		if err != nil {
			t.Fatalf("second replay after recovery errored: %v", err)
		}
		if info.TruncatedBytes != 0 {
			t.Fatalf("second replay truncated %d bytes — recovery did not converge", info.TruncatedBytes)
		}
		if len(second) != len(first) {
			t.Fatalf("recovery not idempotent: %d then %d records", len(first), len(second))
		}
	})
}

// FuzzWALReplay feeds arbitrary bytes to the ledger WAL opener and
// asserts it never panics, never accepts a chain Restore refuses, and
// that a recovered WAL reopens cleanly.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	led := blockchain.NewLedger()
	b1, _ := led.AppendBlock([]blockchain.Transaction{blockchain.NewTransaction(blockchain.EventDataReceipt, "f", "ref-1", nil, nil)})
	if b1 != nil {
		if payload, err := json.Marshal(*b1); err == nil {
			f.Add(encodeFrame(KindBlock, payload))
			f.Add(encodeFrame(KindBlock, payload)[:8]) // torn tail
		}
	}
	f.Add(encodeFrame(KindBlock, []byte(`{"number":0,"txs":[]}`)))
	f.Add(encodeFrame(KindLake, []byte(`{"op":"put"}`))) // wrong kind

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o600); err != nil {
			t.Skip()
		}
		wal, blocks, err := OpenWAL(dir, Options{})
		if err != nil {
			return // refusal is always acceptable for garbage input
		}
		wal.Close()
		// Whatever replayed must be a well-formed prefix chain or be
		// rejected by Restore — but Restore must never panic either way.
		_ = blockchain.NewLedger().Restore(blocks)
		// Recovery must converge: reopening sees the same chain.
		wal2, blocks2, err := OpenWAL(dir, Options{})
		if err != nil {
			t.Fatalf("reopen after recovery failed: %v", err)
		}
		wal2.Close()
		if len(blocks2) != len(blocks) {
			t.Fatalf("recovery not idempotent: %d then %d blocks", len(blocks), len(blocks2))
		}
	})
}
