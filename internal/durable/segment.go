package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"healthcloud/internal/faultinject"
	"healthcloud/internal/telemetry"
)

// Disk fault-point suffixes. A SegmentStore scoped as "durable.lake"
// consults "durable.lake.write" (append fails before any byte lands),
// "durable.lake.torn" (append writes a partial frame then wedges — the
// on-disk image a power cut mid-write leaves behind) and
// "durable.lake.fsync" (fsync fails, or stalls via injected latency).
const (
	FaultWriteSuffix = ".write"
	FaultTornSuffix  = ".torn"
	FaultFsyncSuffix = ".fsync"
)

// DefaultMaxSegmentBytes rotates segments at 4 MiB — small enough that
// whole-file replay reads stay cheap, large enough that rotation is
// rare on the experiment workloads.
const DefaultMaxSegmentBytes = 4 << 20

// Options configures a SegmentStore.
type Options struct {
	// MaxSegmentBytes rotates the active segment once it grows past
	// this size. Zero means DefaultMaxSegmentBytes.
	MaxSegmentBytes int64
	// SyncEachAppend fsyncs inline inside every Append instead of
	// group-committing across concurrent appenders — the slow, simple
	// baseline E20's fsync-batching row compares against.
	SyncEachAppend bool
	// FaultScope prefixes the disk fault points ("<scope>.write" etc.).
	// Empty means "durable".
	FaultScope string
	// Faults is the shared fault-injection registry (nil disables).
	Faults *faultinject.Registry
	// Registry receives wal/segment metrics (nil disables).
	Registry *telemetry.Registry
	// Tracer records durable.replay spans (nil disables).
	Tracer *telemetry.Tracer
}

// Stats is a point-in-time view of one store, for probes and tests.
type Stats struct {
	Segments     int           // segment + compacted files on disk
	ActiveBytes  int64         // bytes in the active segment
	Appends      uint64        // frames appended since open
	Fsyncs       uint64        // fsync syscalls issued since open
	LastFsync    time.Duration // duration of the most recent fsync
	LastFsyncAt  time.Time     // when it completed
	Wedged       bool          // writer refused after torn write / fsync failure
	ReplayedRecs int           // frames replayed at open
	TruncatedLen int64         // torn-tail bytes truncated at open
}

// segMetrics are the shared counters (multiple stores aggregate into
// the same registry names, like the sharded lake's shards do).
type segMetrics struct {
	appends, appendBytes *telemetry.Counter
	fsyncs               *telemetry.Counter
	fsyncDur             *telemetry.Histogram
	rotations            *telemetry.Counter
	replayRecs           *telemetry.Counter
	truncBytes           *telemetry.Counter
	compactions          *telemetry.Counter
	compactDrops         *telemetry.Counter
}

func newSegMetrics(reg *telemetry.Registry) *segMetrics {
	if reg == nil {
		return nil
	}
	return &segMetrics{
		appends:      reg.Counter("durable_appends_total"),
		appendBytes:  reg.Counter("durable_append_bytes_total"),
		fsyncs:       reg.Counter("durable_fsyncs_total"),
		fsyncDur:     reg.Histogram("durable_fsync_seconds"),
		rotations:    reg.Counter("durable_segment_rotations_total"),
		replayRecs:   reg.Counter("durable_replay_records_total"),
		truncBytes:   reg.Counter("durable_replay_truncated_bytes_total"),
		compactions:  reg.Counter("durable_compactions_total"),
		compactDrops: reg.Counter("durable_compaction_dropped_total"),
	}
}

// SegmentStore is the append-only substrate both faces share: a
// directory of CRC32C-framed segment files with group-commit fsync
// batching and size-based rotation. Appends are staged in order under
// one mutex; durability waits happen outside it, and the first waiter
// of a batch fsyncs for everyone (leader-based group commit).
type SegmentStore struct {
	dir string
	opt Options
	met *segMetrics

	ptWrite, ptTorn, ptFsync string

	mu        sync.Mutex
	cond      *sync.Cond
	f         *os.File
	seq       int   // active segment number
	size      int64 // bytes staged in the active segment
	appendSeq uint64
	syncedSeq uint64
	syncing   bool
	stats     Stats
	closed    bool
	wedged    bool
	wedgeErr  error
}

// openSegmentStore opens dir's active segment for appending, creating
// seg-000001.log when the directory is empty. Replay has already run
// (and truncated any torn tail) by the time this is called.
func openSegmentStore(dir string, activeSeq int, opt Options) (*SegmentStore, error) {
	if opt.MaxSegmentBytes <= 0 {
		opt.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	scope := opt.FaultScope
	if scope == "" {
		scope = "durable"
	}
	if activeSeq < 1 {
		activeSeq = 1
	}
	path := filepath.Join(dir, segName(activeSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("durable: opening segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: stating segment: %w", err)
	}
	s := &SegmentStore{
		dir: dir, opt: opt, met: newSegMetrics(opt.Registry),
		ptWrite: scope + FaultWriteSuffix,
		ptTorn:  scope + FaultTornSuffix,
		ptFsync: scope + FaultFsyncSuffix,
		f:       f, seq: activeSeq, size: fi.Size(),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Append frames payload, stages it in the active segment, and returns
// a wait function that blocks until the frame is durable (fsynced).
// Staging order under the store's mutex is the replay order, so a
// caller that stages inside its own critical section gets journal
// order identical to its in-memory apply order, then waits for
// durability after releasing its lock.
func (s *SegmentStore) Append(kind byte, payload []byte) (wait func() error, err error) {
	frame := encodeFrame(kind, payload)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.wedged {
		err := s.wedgeErr
		s.mu.Unlock()
		return nil, err
	}
	if ferr := s.opt.Faults.Check(s.ptWrite); ferr != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("durable: segment write: %w", ferr)
	}
	if ferr := s.opt.Faults.Check(s.ptTorn); ferr != nil {
		err := s.tearLocked(frame, ferr)
		s.mu.Unlock()
		return nil, err
	}
	if s.size >= s.opt.MaxSegmentBytes {
		if err := s.rotateLocked(); err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	if _, err := s.f.Write(frame); err != nil {
		s.wedge(fmt.Errorf("durable: segment write: %w", err))
		s.mu.Unlock()
		return nil, err
	}
	s.size += int64(len(frame))
	s.appendSeq++
	seq := s.appendSeq
	s.stats.Appends++
	if s.met != nil {
		s.met.appends.Inc()
		s.met.appendBytes.Add(uint64(len(frame)))
	}
	if s.opt.SyncEachAppend {
		err := s.fsyncLocked()
		s.mu.Unlock()
		return func() error { return err }, err
	}
	s.mu.Unlock()
	return func() error { return s.waitSynced(seq) }, nil
}

// AppendSync appends and waits for durability in one call.
func (s *SegmentStore) AppendSync(kind byte, payload []byte) error {
	wait, err := s.Append(kind, payload)
	if err != nil {
		return err
	}
	return wait()
}

// tearLocked simulates the on-disk image of a crash mid-write: a
// prefix of the frame lands (and is flushed so a post-SIGKILL reader
// sees it), then the writer wedges — the file position can no longer
// be trusted, so every later append fails until the store is reopened
// and replay truncates the tear.
func (s *SegmentStore) tearLocked(frame []byte, cause error) error {
	cut := len(frame) / 2
	if cut == 0 {
		cut = 1
	}
	s.f.Write(frame[:cut])
	s.f.Sync()
	s.size += int64(cut)
	err := fmt.Errorf("%w: %v", ErrWedged, cause)
	s.wedge(err)
	return err
}

// wedge marks the writer unusable; waiters are released with the error.
func (s *SegmentStore) wedge(err error) {
	s.wedged = true
	s.wedgeErr = err
	s.stats.Wedged = true
	s.cond.Broadcast()
}

// fsyncLocked syncs the active segment under the store mutex (the
// SyncEachAppend baseline and rotation path).
func (s *SegmentStore) fsyncLocked() error {
	if ferr := s.opt.Faults.Check(s.ptFsync); ferr != nil {
		err := fmt.Errorf("durable: fsync: %w", ferr)
		s.wedge(err)
		return err
	}
	start := time.Now()
	if err := s.f.Sync(); err != nil {
		err = fmt.Errorf("durable: fsync: %w", err)
		s.wedge(err)
		return err
	}
	s.observeFsync(time.Since(start))
	s.syncedSeq = s.appendSeq
	return nil
}

func (s *SegmentStore) observeFsync(d time.Duration) {
	s.stats.Fsyncs++
	s.stats.LastFsync = d
	s.stats.LastFsyncAt = time.Now()
	if s.met != nil {
		s.met.fsyncs.Inc()
		s.met.fsyncDur.Observe(d)
	}
}

// waitSynced blocks until frame seq is durable. The first waiter to
// arrive while no fsync is in flight becomes the batch leader: it
// syncs once for every frame staged so far, then wakes the batch. A
// failed or injected-failing fsync wedges the store — after fsync has
// lied once, the cache state is unknowable, so refusing further writes
// until reopen is the only honest answer.
func (s *SegmentStore) waitSynced(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.syncedSeq >= seq {
			return nil
		}
		if s.wedged {
			return s.wedgeErr
		}
		if s.closed {
			return ErrClosed
		}
		if !s.syncing {
			s.syncing = true
			target := s.appendSeq
			f := s.f
			s.mu.Unlock()

			var err error
			if ferr := s.opt.Faults.Check(s.ptFsync); ferr != nil {
				err = fmt.Errorf("durable: fsync: %w", ferr)
			} else {
				start := time.Now()
				if serr := f.Sync(); serr != nil {
					err = fmt.Errorf("durable: fsync: %w", serr)
				} else {
					dur := time.Since(start)
					s.mu.Lock()
					s.observeFsync(dur)
					s.mu.Unlock()
				}
			}

			s.mu.Lock()
			s.syncing = false
			if err != nil {
				s.wedge(err)
				return err
			}
			if target > s.syncedSeq {
				s.syncedSeq = target
			}
			s.cond.Broadcast()
			continue
		}
		s.cond.Wait()
	}
}

// rotateLocked seals the active segment (one final fsync so its staged
// frames are durable before the writer moves on) and starts the next.
func (s *SegmentStore) rotateLocked() error {
	if err := s.fsyncLocked(); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		err = fmt.Errorf("durable: closing segment: %w", err)
		s.wedge(err)
		return err
	}
	s.seq++
	f, err := os.OpenFile(filepath.Join(s.dir, segName(s.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		err = fmt.Errorf("durable: opening segment: %w", err)
		s.wedge(err)
		return err
	}
	s.f = f
	s.size = 0
	s.cond.Broadcast() // everything staged so far is durable
	if s.met != nil {
		s.met.rotations.Inc()
	}
	return nil
}

// Sync forces durability of everything staged so far (graceful
// shutdown's flush step).
func (s *SegmentStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wedged {
		return s.wedgeErr
	}
	if s.syncedSeq >= s.appendSeq {
		return nil
	}
	return s.fsyncLocked()
}

// Close syncs and closes the active segment. Further appends fail with
// ErrClosed.
func (s *SegmentStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	var err error
	if !s.wedged && s.syncedSeq < s.appendSeq {
		err = s.fsyncLocked()
	}
	if cerr := s.f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("durable: closing segment: %w", cerr)
	}
	s.closed = true
	s.cond.Broadcast()
	return err
}

// Stats snapshots the store's counters.
func (s *SegmentStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.ActiveBytes = s.size
	st.Wedged = s.wedged
	if names, err := listLogFiles(s.dir); err == nil {
		st.Segments = len(names)
	}
	return st
}

// Wedged reports whether the writer refused after a torn write or
// failed fsync (the monitor's durability probe consults this).
func (s *SegmentStore) Wedged() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wedged
}

// --- file naming ---------------------------------------------------

func segName(seq int) string { return fmt.Sprintf("seg-%06d.log", seq) }

func cmpName(a, b int) string { return fmt.Sprintf("cmp-%06d-%06d.log", a, b) }

// parseSeg returns the sequence number of a seg-NNNNNN.log name.
func parseSeg(name string) (int, bool) {
	var seq int
	if n, err := fmt.Sscanf(name, "seg-%06d.log", &seq); err != nil || n != 1 {
		return 0, false
	}
	return seq, true
}

// parseCmp returns the [a,b] segment range a cmp-file covers.
func parseCmp(name string) (a, b int, ok bool) {
	if n, err := fmt.Sscanf(name, "cmp-%06d-%06d.log", &a, &b); err != nil || n != 2 {
		return 0, 0, false
	}
	return a, b, true
}

// listLogFiles returns the seg-/cmp- file names in dir, sorted.
func listLogFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasPrefix(name, "seg-") || strings.HasPrefix(name, "cmp-") {
			if strings.HasSuffix(name, ".log") {
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}
