package durable

import (
	"fmt"
	"testing"

	"healthcloud/internal/blockchain"
)

// TestWALSnapshotReplayMatchesFullReplay pins the snapshot contract:
// restoring from (latest snapshot, tail blocks) must yield exactly the
// same state hash as replaying the full chain, and the restored ledger
// must keep committing into the same WAL.
func TestWALSnapshotReplayMatchesFullReplay(t *testing.T) {
	dir := t.TempDir()
	wal, blocks, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if len(blocks) != 0 {
		t.Fatalf("fresh WAL replayed %d blocks", len(blocks))
	}
	led := blockchain.NewLedger()
	led.SetWAL(wal)
	led.SetSnapshotEvery(4)
	for i := 0; i < 10; i++ {
		tx := newTx(fmt.Sprintf("snap-ref-%d", i))
		if _, err := led.AppendBlock([]blockchain.Transaction{tx}); err != nil {
			t.Fatalf("AppendBlock %d: %v", i, err)
		}
	}
	liveHash := led.StateHash()
	if got := wal.SnapshotHeight(); got != 8 {
		t.Fatalf("SnapshotHeight = %d, want 8 (boundaries at 4 and 8)", got)
	}
	wal.Close()

	// Full replay — OpenWAL must still return the entire chain even
	// with snapshot frames interleaved (byte-identical legacy path).
	walFull, full, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatalf("reopen full: %v", err)
	}
	if len(full) != 10 {
		t.Fatalf("full replay returned %d blocks, want 10", len(full))
	}
	fullLed := blockchain.NewLedger()
	if err := fullLed.Restore(full); err != nil {
		t.Fatalf("full Restore: %v", err)
	}
	if got := fullLed.StateHash(); got != liveHash {
		t.Fatalf("full-replay state hash = %s, want %s", got, liveHash)
	}
	walFull.Close()

	// Bounded replay — the snapshot plus the two-block tail.
	walSnap, rep, err := OpenWALSnapshot(dir, Options{})
	if err != nil {
		t.Fatalf("reopen snapshot: %v", err)
	}
	defer walSnap.Close()
	if rep.Snapshot == nil {
		t.Fatal("OpenWALSnapshot returned no snapshot")
	}
	if rep.Snapshot.Height != 8 || len(rep.Blocks) != 2 {
		t.Fatalf("snapshot height %d with %d tail blocks, want 8 and 2",
			rep.Snapshot.Height, len(rep.Blocks))
	}
	snapLed := blockchain.NewLedger()
	if err := snapLed.RestoreSnapshot(*rep.Snapshot, rep.Blocks); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if got := snapLed.StateHash(); got != liveHash {
		t.Fatalf("snapshot-replay state hash = %s, want %s (full replay)", got, liveHash)
	}
	if err := snapLed.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain after snapshot restore: %v", err)
	}
	if got, want := snapLed.Height(), 10; got != want {
		t.Fatalf("Height after snapshot restore = %d, want %d", got, want)
	}
	if got, want := snapLed.TxCount(), fullLed.TxCount(); got != want {
		t.Fatalf("TxCount after snapshot restore = %d, want %d", got, want)
	}
	if got := snapLed.Base(); got != 8 {
		t.Fatalf("Base = %d, want 8", got)
	}
	// The snapshot-restored ledger keeps committing into the same WAL
	// at the right height, and its state matches a dedup replay.
	snapLed.SetWAL(walSnap)
	if _, err := snapLed.AppendBlock([]blockchain.Transaction{newTx("snap-ref-post")}); err != nil {
		t.Fatalf("AppendBlock after snapshot restore: %v", err)
	}
	if got, want := snapLed.Height(), 11; got != want {
		t.Fatalf("Height after post-restore commit = %d, want %d", got, want)
	}
}

// TestWALSnapshotSharedAcrossPeersDedups: every peer of a network
// offers the same snapshot at the same boundary; only the first lands
// in the log, the rest are skipped silently.
func TestWALSnapshotSharedAcrossPeersDedups(t *testing.T) {
	dir := t.TempDir()
	wal, _, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	peerA, peerB := blockchain.NewLedger(), blockchain.NewLedger()
	for _, led := range []*blockchain.Ledger{peerA, peerB} {
		led.SetWAL(wal)
		led.SetSnapshotEvery(2)
	}
	for i := 0; i < 4; i++ {
		txs := []blockchain.Transaction{newTx(fmt.Sprintf("shared-%d", i))}
		if _, err := peerA.AppendBlock(txs); err != nil {
			t.Fatalf("peerA block %d: %v", i, err)
		}
		if _, err := peerB.AppendBlock(txs); err != nil {
			t.Fatalf("peerB block %d: %v", i, err)
		}
	}
	wal.Close()

	// Count snapshot frames directly: exactly one per boundary even
	// though two peers offered one at each.
	snapshots := 0
	if _, _, err := replayDir(dir, nil, newSegMetrics(nil), func(rec Record) error {
		if rec.Kind == KindSnapshot {
			snapshots++
		}
		return nil
	}); err != nil {
		t.Fatalf("replayDir: %v", err)
	}
	if snapshots != 2 {
		t.Fatalf("framed %d snapshots, want 2 (one per boundary)", snapshots)
	}
}
