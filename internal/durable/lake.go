package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"healthcloud/internal/store"
)

// LakeLog is the log-structured persistence behind one store.DataLake:
// it implements store.Journal over a SegmentStore, so every lake
// mutation is framed to disk write-ahead, and OpenLake rebuilds the
// in-memory index by replay. Each shard of a sharded lake gets its own
// LakeLog in its own directory; because replication already moves
// portable Sealed records, the quorum/repair machinery above needs no
// changes at all.
type LakeLog struct {
	seg  *SegmentStore
	info ReplayInfo

	cmu sync.Mutex // serializes compactions
}

var _ store.Journal = (*LakeLog)(nil)

// OpenLake replays dir into lake (which must be freshly constructed —
// replay bypasses fault points and the journal) and opens the log for
// appending. Attach the returned LakeLog with lake.SetJournal before
// the lake takes traffic. A torn tail is truncated; interior
// corruption returns ErrCorrupt and no LakeLog.
func OpenLake(dir string, lake *store.DataLake, opt Options) (*LakeLog, error) {
	met := newSegMetrics(opt.Registry)
	info, activeSeq, err := replayDir(dir, opt.Tracer, met, func(rec Record) error {
		if rec.Kind != KindLake {
			return fmt.Errorf("unexpected frame kind 0x%02x in lake log", rec.Kind)
		}
		var jr store.JournalRecord
		if err := json.Unmarshal(rec.Payload, &jr); err != nil {
			return fmt.Errorf("decoding journal record: %w", err)
		}
		return lake.ApplyJournal(jr)
	})
	if err != nil {
		return nil, err
	}
	seg, err := openSegmentStore(dir, activeSeq, opt)
	if err != nil {
		return nil, err
	}
	return &LakeLog{seg: seg, info: info}, nil
}

// Append implements store.Journal: frame the record and stage it; the
// returned wait blocks until it is fsynced.
func (l *LakeLog) Append(rec store.JournalRecord) (func() error, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("durable: encoding journal record: %w", err)
	}
	return l.seg.Append(KindLake, payload)
}

// ReplayInfo reports what OpenLake replayed.
func (l *LakeLog) ReplayInfo() ReplayInfo { return l.info }

// Stats snapshots the underlying segment store, replay info included.
func (l *LakeLog) Stats() Stats {
	st := l.seg.Stats()
	st.ReplayedRecs = l.info.Records
	st.TruncatedLen = l.info.TruncatedBytes
	return st
}

// Wedged reports whether the writer refused after a torn write or
// failed fsync.
func (l *LakeLog) Wedged() bool { return l.seg.Wedged() }

// Sync flushes everything staged (graceful shutdown).
func (l *LakeLog) Sync() error { return l.seg.Sync() }

// Close syncs and closes the log.
func (l *LakeLog) Close() error { return l.seg.Close() }

// CompactStats reports one compaction pass.
type CompactStats struct {
	InputRecords  int // frames read from the sealed prefix
	OutputRecords int // frames written to the compacted file
	Dropped       int // shadowed puts, evicted refs, moot grants
}

// Compact folds the sealed prefix of the log — every segment except
// the active one, plus any previous compacted file — into a single
// compacted file, dropping records replay no longer needs:
//
//   - older puts shadowed by a newer put or a tombstone of the same ref
//   - evicted refs (the put and the evict marker both go)
//   - grants for refs that are gone or tombstoned (key shredded — a
//     grant has nothing to attach to)
//
// Tombstones themselves are KEPT: they are what stops a late hint or a
// repair pass from resurrecting a securely-deleted record after a
// restart. The pass is crash-safe at every step: the compacted file is
// written to a tmp- name, fsynced, atomically renamed, and only then
// are its inputs deleted — replay handles a crash between any two of
// those steps (tmp files are ignored, the widest cmp range wins, and
// covered segments are skipped).
func (l *LakeLog) Compact() (CompactStats, error) {
	l.cmu.Lock()
	defer l.cmu.Unlock()
	var cs CompactStats

	// Seal the active segment so the sealed prefix is immutable for the
	// rest of the pass.
	l.seg.mu.Lock()
	if l.seg.closed || l.seg.wedged {
		err := l.seg.wedgeErr
		if l.seg.closed {
			err = ErrClosed
		}
		l.seg.mu.Unlock()
		return cs, err
	}
	if err := l.seg.rotateLocked(); err != nil {
		l.seg.mu.Unlock()
		return cs, err
	}
	sealedUpTo := l.seg.seq - 1
	dir := l.seg.dir
	l.seg.mu.Unlock()

	names, err := listLogFiles(dir)
	if err != nil {
		return cs, err
	}
	// Inputs in replay order: widest cmp file first, then sealed segs.
	var inputs []string
	cmpEnd := 0
	for _, name := range names {
		if _, b, ok := parseCmp(name); ok && b > cmpEnd {
			cmpEnd = b
		}
	}
	for _, name := range names {
		if a, b, ok := parseCmp(name); ok {
			if b == cmpEnd && a <= 1 {
				inputs = append(inputs, name)
			}
			continue
		}
		if seq, ok := parseSeg(name); ok && seq > cmpEnd && seq <= sealedUpTo {
			inputs = append(inputs, name)
		}
	}
	if len(inputs) == 0 {
		return cs, nil
	}

	// Replay the sealed prefix. These files are immutable and were
	// fsynced at rotation, so any bad frame here is interior corruption.
	type refState struct {
		final            store.JournalRecord // latest put or tombstone
		grants           []store.JournalRecord
		evicted, present bool
	}
	states := make(map[string]*refState)
	var orderRefs []string
	get := func(ref string) *refState {
		st, ok := states[ref]
		if !ok {
			st = &refState{}
			states[ref] = st
			orderRefs = append(orderRefs, ref)
		}
		return st
	}
	for _, name := range inputs {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return cs, fmt.Errorf("durable: reading %s: %w", name, err)
		}
		recs, validEnd, ok := scanFrames(data)
		if !ok {
			return cs, fmt.Errorf("%w: bad frame at %s:%d during compaction", ErrCorrupt, name, validEnd)
		}
		for _, rec := range recs {
			var jr store.JournalRecord
			if err := json.Unmarshal(rec.Payload, &jr); err != nil {
				return cs, fmt.Errorf("%w: undecodable record in %s: %v", ErrCorrupt, name, err)
			}
			cs.InputRecords++
			st := get(jr.Sealed.RefID)
			switch jr.Op {
			case store.OpPut, store.OpTombstone:
				st.final = jr
				st.present, st.evicted = true, false
			case store.OpEvict:
				st.evicted, st.present = true, false
			case store.OpGrant:
				st.grants = append(st.grants, jr)
			}
		}
	}

	// Render the survivors deterministically: first-seen ref order,
	// final record then its surviving grants.
	var out []store.JournalRecord
	for _, ref := range orderRefs {
		st := states[ref]
		if st.evicted || !st.present {
			continue
		}
		out = append(out, st.final)
		if !st.final.Sealed.Deleted {
			out = append(out, st.grants...)
		}
	}
	cs.OutputRecords = len(out)
	cs.Dropped = cs.InputRecords - cs.OutputRecords

	tmp := filepath.Join(dir, fmt.Sprintf("tmp-cmp-%06d.log", sealedUpTo))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return cs, fmt.Errorf("durable: creating compaction output: %w", err)
	}
	for _, jr := range out {
		payload, err := json.Marshal(jr)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return cs, fmt.Errorf("durable: encoding compacted record: %w", err)
		}
		if _, err := f.Write(encodeFrame(KindLake, payload)); err != nil {
			f.Close()
			os.Remove(tmp)
			return cs, fmt.Errorf("durable: writing compaction output: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return cs, fmt.Errorf("durable: syncing compaction output: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return cs, fmt.Errorf("durable: closing compaction output: %w", err)
	}
	final := filepath.Join(dir, cmpName(1, sealedUpTo))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return cs, fmt.Errorf("durable: publishing compaction output: %w", err)
	}
	syncDir(dir)
	// Cleanup: the rename is the commit point; anything covered is now
	// redundant and a crash before these deletes finish is handled at
	// the next open.
	for _, name := range inputs {
		if name != cmpName(1, sealedUpTo) {
			os.Remove(filepath.Join(dir, name))
		}
	}
	if l.seg.met != nil {
		l.seg.met.compactions.Inc()
		l.seg.met.compactDrops.Add(uint64(cs.Dropped))
	}
	return cs, nil
}

// syncDir fsyncs a directory so a just-renamed file survives power
// loss. Best-effort: some platforms refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
