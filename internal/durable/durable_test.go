package durable

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"healthcloud/internal/blockchain"
	"healthcloud/internal/faultinject"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/store"
)

func newLake(t *testing.T) *store.DataLake {
	t.Helper()
	kms, err := hckrypto.NewKMS("tenant-a")
	if err != nil {
		t.Fatalf("NewKMS: %v", err)
	}
	return store.NewDataLake(kms, "storage-svc")
}

// openJournaled opens dir into a fresh lake and attaches the journal.
func openJournaled(t *testing.T, dir string, opt Options) (*store.DataLake, *LakeLog) {
	t.Helper()
	lake := newLake(t)
	log, err := OpenLake(dir, lake, opt)
	if err != nil {
		t.Fatalf("OpenLake: %v", err)
	}
	lake.SetJournal(log)
	return lake, log
}

func TestLakeSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	lake, log := openJournaled(t, dir, Options{})

	refLive, err := lake.Put("patient-1", []byte("vitals"), store.Meta{Tenant: "tenant-a"})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	refDead, err := lake.Put("patient-2", []byte("labs"), store.Meta{Tenant: "tenant-a"})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := lake.Grant(refLive, "analytics"); err != nil {
		t.Fatalf("Grant: %v", err)
	}
	if err := lake.SecureDelete(refDead); err != nil {
		t.Fatalf("SecureDelete: %v", err)
	}
	want, err := lake.GetSealed(refLive)
	if err != nil {
		t.Fatalf("GetSealed: %v", err)
	}
	if err := log.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	lake2, log2 := openJournaled(t, dir, Options{})
	defer log2.Close()
	if info := log2.ReplayInfo(); info.Records == 0 || info.TruncatedBytes != 0 {
		t.Fatalf("replay info = %+v, want records > 0 and no truncation", info)
	}
	got, err := lake2.GetSealed(refLive)
	if err != nil {
		t.Fatalf("GetSealed after reopen: %v", err)
	}
	if got.KeyID != want.KeyID || string(got.Ciphertext) != string(want.Ciphertext) {
		t.Fatal("live record not byte-identical after replay")
	}
	dead, err := lake2.GetSealed(refDead)
	if err != nil {
		t.Fatalf("GetSealed tombstone: %v", err)
	}
	if !dead.Deleted || len(dead.Ciphertext) != 0 {
		t.Fatalf("tombstone not preserved: %+v", dead)
	}
	if n := lake2.Count(); n != 1 {
		t.Fatalf("Count after reopen = %d, want 1", n)
	}
}

func TestEvictReplay(t *testing.T) {
	dir := t.TempDir()
	lake, log := openJournaled(t, dir, Options{})
	ref, err := lake.Put("p", []byte("x"), store.Meta{Tenant: "tenant-a"})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	lake.Evict(ref)
	log.Close()

	lake2, log2 := openJournaled(t, dir, Options{})
	defer log2.Close()
	if _, err := lake2.GetSealed(ref); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("evicted record replayed back: err=%v", err)
	}
}

// activeSegPath returns the newest segment file in dir.
func activeSegPath(t *testing.T, dir string) string {
	t.Helper()
	names, err := listLogFiles(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("no log files in %s (err=%v)", dir, err)
	}
	var segs []string
	for _, n := range names {
		if _, ok := parseSeg(n); ok {
			segs = append(segs, n)
		}
	}
	if len(segs) == 0 {
		t.Fatalf("no segment files in %s", dir)
	}
	return filepath.Join(dir, segs[len(segs)-1])
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	lake, log := openJournaled(t, dir, Options{})
	ref, err := lake.Put("p", []byte("payload"), store.Meta{Tenant: "tenant-a"})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	log.Close()

	// Simulate a crash mid-write: a partial frame at the tail.
	path := activeSegPath(t, dir)
	frame := encodeFrame(KindLake, []byte(`{"op":"put"}`))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f.Write(frame[:len(frame)-3])
	f.Close()

	lake2, log2 := openJournaled(t, dir, Options{})
	defer log2.Close()
	if got := log2.ReplayInfo().TruncatedBytes; got != int64(len(frame)-3) {
		t.Fatalf("TruncatedBytes = %d, want %d", got, len(frame)-3)
	}
	if _, err := lake2.GetSealed(ref); err != nil {
		t.Fatalf("record before the tear lost: %v", err)
	}
}

func TestInteriorCorruptionRefuses(t *testing.T) {
	dir := t.TempDir()
	lake, log := openJournaled(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if _, err := lake.Put("p", []byte("record payload to give the frame some width"), store.Meta{Tenant: "t"}); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	log.Close()

	// Flip one byte in the middle of the first frame's payload: later
	// frames stay valid, so this must be interior corruption.
	path := activeSegPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[frameHeaderSize+10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatalf("write: %v", err)
	}

	if _, err := OpenLake(dir, newLake(t), Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenLake on interior corruption = %v, want ErrCorrupt", err)
	}
}

func TestSealedSegmentCorruptTailRefuses(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation, giving us sealed (non-final) files.
	lake, log := openJournaled(t, dir, Options{MaxSegmentBytes: 256})
	for i := 0; i < 6; i++ {
		if _, err := lake.Put("p", []byte("padding padding padding padding"), store.Meta{Tenant: "t"}); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	log.Close()
	names, _ := listLogFiles(dir)
	if len(names) < 2 {
		t.Fatalf("expected rotation, got files %v", names)
	}
	// Truncate the FIRST (sealed) segment mid-frame. In the final
	// segment this would be a torn tail; in a sealed file it is interior
	// corruption — sealed segments were fsynced at rotation and have no
	// in-flight tail to tear.
	first := filepath.Join(dir, names[0])
	fi, _ := os.Stat(first)
	if err := os.Truncate(first, fi.Size()-4); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, err := OpenLake(dir, newLake(t), Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenLake on sealed-segment damage = %v, want ErrCorrupt", err)
	}
}

func TestTornWriteFaultWedgesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	faults := faultinject.NewRegistry(7)
	lake, log := openJournaled(t, dir, Options{FaultScope: "durable.test", Faults: faults})

	ref, err := lake.Put("p", []byte("acked before the tear"), store.Meta{Tenant: "t"})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	// The next append tears mid-frame and wedges the writer.
	faults.Enable("durable.test.torn", faultinject.Fault{FailFirst: 1})
	if _, err := lake.Put("p", []byte("torn"), store.Meta{Tenant: "t"}); err == nil {
		t.Fatal("Put during torn write succeeded, want error")
	}
	if !log.Wedged() {
		t.Fatal("writer not wedged after torn write")
	}
	if _, err := lake.Put("p", []byte("after"), store.Meta{Tenant: "t"}); err == nil {
		t.Fatal("Put after wedge succeeded, want error")
	}
	log.Close()

	lake2, log2 := openJournaled(t, dir, Options{})
	defer log2.Close()
	if log2.ReplayInfo().TruncatedBytes == 0 {
		t.Fatal("no torn tail truncated on reopen")
	}
	if _, err := lake2.GetSealed(ref); err != nil {
		t.Fatalf("acknowledged record lost across tear: %v", err)
	}
	if _, err := lake2.Put("p", []byte("writes work again"), store.Meta{Tenant: "t"}); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
}

func TestWriteAndFsyncFaults(t *testing.T) {
	dir := t.TempDir()
	faults := faultinject.NewRegistry(7)
	lake, log := openJournaled(t, dir, Options{FaultScope: "d", Faults: faults})

	faults.Enable("d.write", faultinject.Fault{FailFirst: 1})
	if _, err := lake.Put("p", []byte("x"), store.Meta{Tenant: "t"}); err == nil {
		t.Fatal("Put with write fault succeeded")
	}
	// Write faults are transient (nothing was staged); the next write
	// goes through.
	if _, err := lake.Put("p", []byte("x"), store.Meta{Tenant: "t"}); err != nil {
		t.Fatalf("Put after transient write fault: %v", err)
	}
	// A failed fsync wedges: after fsync lies once, the page-cache
	// state is unknowable.
	faults.Enable("d.fsync", faultinject.Fault{FailFirst: 1})
	if _, err := lake.Put("p", []byte("x"), store.Meta{Tenant: "t"}); err == nil {
		t.Fatal("Put with fsync fault succeeded")
	}
	if !log.Wedged() {
		t.Fatal("writer not wedged after fsync failure")
	}
	log.Close()
}

func TestRotationCompactionAndReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	lake, log := openJournaled(t, dir, Options{MaxSegmentBytes: 512})

	var refs []string
	for i := 0; i < 12; i++ {
		ref, err := lake.Put("p", []byte("record-payload-record-payload"), store.Meta{Tenant: "t"})
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		refs = append(refs, ref)
	}
	if err := lake.SecureDelete(refs[0]); err != nil {
		t.Fatalf("SecureDelete: %v", err)
	}
	lake.Evict(refs[1])
	if err := lake.Grant(refs[2], "analytics"); err != nil {
		t.Fatalf("Grant: %v", err)
	}

	cs, err := log.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if cs.Dropped == 0 {
		t.Fatalf("compaction dropped nothing: %+v", cs)
	}
	// More writes after compaction land in the new active segment.
	post, err := lake.Put("p", []byte("post-compaction"), store.Meta{Tenant: "t"})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	wantRefs := lake.Refs()
	log.Close()

	lake2, log2 := openJournaled(t, dir, Options{})
	defer log2.Close()
	gotRefs := lake2.Refs()
	if len(gotRefs) != len(wantRefs) {
		t.Fatalf("replayed refs = %d, want %d", len(gotRefs), len(wantRefs))
	}
	for i := range wantRefs {
		if gotRefs[i] != wantRefs[i] {
			t.Fatalf("ref %d: %s != %s", i, gotRefs[i], wantRefs[i])
		}
	}
	for _, ref := range []string{refs[2], post} {
		a, err1 := lake.GetSealed(ref)
		b, err2 := lake2.GetSealed(ref)
		if err1 != nil || err2 != nil {
			t.Fatalf("GetSealed %s: %v / %v", ref, err1, err2)
		}
		if string(a.Ciphertext) != string(b.Ciphertext) {
			t.Fatalf("record %s diverged across compaction+replay", ref)
		}
	}
	// The tombstone must survive compaction (resurrection prevention).
	if s, err := lake2.GetSealed(refs[0]); err != nil || !s.Deleted {
		t.Fatalf("tombstone lost by compaction: s=%+v err=%v", s, err)
	}
	if _, err := lake2.GetSealed(refs[1]); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("evicted ref resurrected by compaction: %v", err)
	}
}

func TestCompactionLeftoversCleanedAtOpen(t *testing.T) {
	dir := t.TempDir()
	lake, log := openJournaled(t, dir, Options{MaxSegmentBytes: 512})
	var ref string
	for i := 0; i < 8; i++ {
		var err error
		if ref, err = lake.Put("p", []byte("record-payload-record-payload"), store.Meta{Tenant: "t"}); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if _, err := log.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	log.Close()

	// Simulate the crash windows: a tmp file that never renamed and a
	// stale segment "covered" by the compacted range.
	if err := os.WriteFile(filepath.Join(dir, "tmp-cmp-000009.log"), []byte("half written"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(1)), encodeFrame(KindLake, []byte(`{"op":"evict","sealed":{"ref_id":"`+ref+`"}}`)), 0o600); err != nil {
		t.Fatal(err)
	}

	lake2, log2 := openJournaled(t, dir, Options{})
	defer log2.Close()
	// The covered segment must have been skipped (its evict ignored).
	if _, err := lake2.GetSealed(ref); err != nil {
		t.Fatalf("covered leftover segment was replayed: %v", err)
	}
	names, _ := listLogFiles(dir)
	for _, n := range names {
		if n == segName(1) {
			t.Fatalf("covered leftover segment not cleaned: %v", names)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "tmp-cmp-000009.log")); !os.IsNotExist(err) {
		t.Fatalf("tmp leftover not cleaned: %v", err)
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	seg, err := openSegmentStore(dir, 1, Options{})
	if err != nil {
		t.Fatalf("openSegmentStore: %v", err)
	}
	defer seg.Close()
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := seg.AppendSync(KindLake, []byte("concurrent append payload")); err != nil {
					t.Errorf("AppendSync: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := seg.Stats()
	if st.Appends != writers*each {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*each)
	}
	if st.Fsyncs >= st.Appends {
		t.Fatalf("group commit did not batch: %d fsyncs for %d appends", st.Fsyncs, st.Appends)
	}
}

func newTx(handle string) blockchain.Transaction {
	return blockchain.NewTransaction(blockchain.EventDataReceipt, "ingest", handle, nil, nil)
}

func TestWALReplayRestoresLedger(t *testing.T) {
	dir := t.TempDir()
	wal, blocks, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if len(blocks) != 0 {
		t.Fatalf("fresh WAL replayed %d blocks", len(blocks))
	}
	led := blockchain.NewLedger()
	led.SetWAL(wal)
	for i := 0; i < 5; i++ {
		if _, err := led.AppendBlock([]blockchain.Transaction{newTx("ref-h")}); err != nil {
			t.Fatalf("AppendBlock: %v", err)
		}
	}
	wantHash := led.StateHash()
	wal.Close()

	wal2, blocks2, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer wal2.Close()
	led2 := blockchain.NewLedger()
	if err := led2.Restore(blocks2); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	led2.SetWAL(wal2)
	if err := led2.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain after restore: %v", err)
	}
	if got := led2.StateHash(); got != wantHash {
		t.Fatalf("StateHash after replay = %s, want %s", got, wantHash)
	}
	// The restored ledger keeps committing into the same WAL.
	if _, err := led2.AppendBlock([]blockchain.Transaction{newTx("ref-h2")}); err != nil {
		t.Fatalf("AppendBlock after restore: %v", err)
	}
}

func TestWALSharedAcrossPeersDedups(t *testing.T) {
	dir := t.TempDir()
	wal, _, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	defer wal.Close()
	peerA, peerB := blockchain.NewLedger(), blockchain.NewLedger()
	peerA.SetWAL(wal)
	peerB.SetWAL(wal)
	txs := []blockchain.Transaction{newTx("ref-x")}
	if _, err := peerA.AppendBlock(txs); err != nil {
		t.Fatalf("peer A commit: %v", err)
	}
	if _, err := peerB.AppendBlock(txs); err != nil {
		t.Fatalf("peer B commit (dedup path): %v", err)
	}
	if st := wal.Stats(); st.Appends != 1 {
		t.Fatalf("WAL holds %d frames for 1 logical block", st.Appends)
	}
	// A diverging block at the same height must be rejected loudly.
	div := blockchain.NewLedger()
	div.SetWAL(wal)
	if _, err := div.AppendBlock([]blockchain.Transaction{newTx("ref-other")}); err == nil {
		t.Fatal("divergent block accepted by shared WAL")
	}
}

func TestWALTornTailDropsOnlyUnackedBlock(t *testing.T) {
	dir := t.TempDir()
	wal, _, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	led := blockchain.NewLedger()
	led.SetWAL(wal)
	for i := 0; i < 3; i++ {
		if _, err := led.AppendBlock([]blockchain.Transaction{newTx("ref-h")}); err != nil {
			t.Fatalf("AppendBlock: %v", err)
		}
	}
	wal.Close()

	path := activeSegPath(t, dir)
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	partial := encodeFrame(KindBlock, []byte(`{"number":3}`))
	f.Write(partial[:7])
	f.Close()

	wal2, blocks, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer wal2.Close()
	if len(blocks) != 3 {
		t.Fatalf("replayed %d blocks, want 3", len(blocks))
	}
	led2 := blockchain.NewLedger()
	if err := led2.Restore(blocks); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if led2.StateHash() != led.StateHash() {
		t.Fatal("state hash diverged after torn-tail recovery")
	}
}

// TestTornOffsetTable crafts, for every possible cut offset within a
// frame, a log holding two intact frames plus a prefix of a third, and
// asserts replay always recovers exactly the two intact records and
// truncates the rest — the "torn at any byte" guarantee.
func TestTornOffsetTable(t *testing.T) {
	intact1 := encodeFrame(KindLake, []byte(`{"op":"put","sealed":{"ref_id":"a"}}`))
	intact2 := encodeFrame(KindLake, []byte(`{"op":"put","sealed":{"ref_id":"b"}}`))
	torn := encodeFrame(KindLake, []byte(`{"op":"put","sealed":{"ref_id":"c"}}`))
	for cut := 0; cut < len(torn); cut++ {
		dir := t.TempDir()
		var file []byte
		file = append(file, intact1...)
		file = append(file, intact2...)
		file = append(file, torn[:cut]...)
		if err := os.WriteFile(filepath.Join(dir, segName(1)), file, 0o600); err != nil {
			t.Fatal(err)
		}
		n := 0
		info, active, err := replayDir(dir, nil, nil, func(Record) error { n++; return nil })
		if err != nil {
			t.Fatalf("cut=%d: replay error: %v", cut, err)
		}
		if n != 2 {
			t.Fatalf("cut=%d: replayed %d records, want 2", cut, n)
		}
		if cut > 0 && info.TruncatedBytes != int64(cut) {
			t.Fatalf("cut=%d: truncated %d bytes", cut, info.TruncatedBytes)
		}
		if active != 1 {
			t.Fatalf("cut=%d: active segment %d, want 1", cut, active)
		}
		// The truncation must round-trip: a second replay sees a clean
		// log with the same two records and nothing to cut.
		n2 := 0
		info2, _, err := replayDir(dir, nil, nil, func(Record) error { n2++; return nil })
		if err != nil || n2 != 2 || info2.TruncatedBytes != 0 {
			t.Fatalf("cut=%d: second replay n=%d trunc=%d err=%v", cut, n2, info2.TruncatedBytes, err)
		}
	}
}
