package fhir

import (
	"bytes"
	"testing"
)

// FuzzParseBundle throws arbitrary bytes at the ingestion decoder — the
// platform's outermost untrusted-input surface — and checks the
// contract ParseBundle promises its callers: it never panics, and any
// bundle it accepts is fully well-formed (every entry parses and
// validates) and survives a Marshal→ParseBundle round trip with its
// shape intact.
func FuzzParseBundle(f *testing.F) {
	f.Add([]byte(`{"resourceType":"Bundle","type":"collection","entry":[` +
		`{"resource":{"resourceType":"Patient","id":"p1","gender":"female","birthDate":"1980-02-29"}},` +
		`{"resource":{"resourceType":"Observation","status":"final","code":{"text":"heart rate"},` +
		`"valueQuantity":{"value":72,"unit":"bpm"}}}]}`))
	f.Add([]byte(`{"resourceType":"Bundle","type":"transaction","entry":[` +
		`{"resource":{"resourceType":"Condition","code":{"coding":[{"system":"snomed","code":"38341003"}]},` +
		`"clinicalStatus":"active"}},` +
		`{"resource":{"resourceType":"MedicationRequest","status":"active",` +
		`"medicationCodeableConcept":{"text":"lisinopril"}}}]}`))
	f.Add([]byte(`{"resourceType":"Bundle","type":"batch"}`))
	f.Add([]byte(`{"resourceType":"Bundle","type":"collection","entry":[{"resource":null}]}`))
	f.Add([]byte(`{"resourceType":"Bundle","type":"collection","entry":[{"resource":{"resourceType":"Device"}}]}`))
	f.Add([]byte(`{"resourceType":"Patient"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`{"resourceType":"Bundle","type":"collection","entry":[` +
		`{"resource":{"resourceType":"Observation","status":"final","code":{"text":"t"},` +
		`"effectiveDateTime":"2024-13-40T99:99:99Z"}}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ParseBundle(data)
		if err != nil {
			return // rejected input: the only requirement is not panicking
		}
		// Accepted ⇒ every entry must be individually parseable and valid.
		resources, err := b.Resources()
		if err != nil {
			t.Fatalf("validated bundle failed Resources(): %v\ninput: %q", err, data)
		}
		for i, r := range resources {
			if err := r.Validate(); err != nil {
				t.Fatalf("validated bundle has invalid entry %d: %v\ninput: %q", i, err, data)
			}
		}
		// Accepted ⇒ the canonical re-encoding must parse back to the
		// same shape (type, id, entry count).
		out, err := Marshal(b)
		if err != nil {
			t.Fatalf("marshal of accepted bundle failed: %v\ninput: %q", err, data)
		}
		b2, err := ParseBundle(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v\nre-encoded: %q\ninput: %q", err, out, data)
		}
		if b2.Type != b.Type || b2.ID != b.ID || len(b2.Entry) != len(b.Entry) {
			t.Fatalf("round trip changed shape: %q/%q/%d -> %q/%q/%d",
				b.Type, b.ID, len(b.Entry), b2.Type, b2.ID, len(b2.Entry))
		}
		out2, err := Marshal(b2)
		if err != nil {
			t.Fatalf("second marshal failed: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("canonical encoding not a fixed point:\n%q\n%q", out, out2)
		}
	})
}
