// Package fhir implements the platform's electronic healthcare
// information exchange format (§II-B): "Our system adopts FHIR as the
// data ingestion format". It provides an R4-subset resource model —
// Patient, Observation, Condition, MedicationRequest, and Bundle — with
// JSON codecs and validation, plus an HL7v2 adapter (hl7.go) because the
// system "can be easily extended to support any other format by writing
// adapters that transform data from one exchange format to another, e.g.
// from HL7 to FHIR and back".
package fhir

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Errors returned by this package.
var (
	ErrInvalid     = errors.New("fhir: invalid resource")
	ErrUnknownType = errors.New("fhir: unknown resource type")
)

// Resource is any FHIR resource the platform understands.
type Resource interface {
	// Type returns the FHIR resourceType discriminator.
	Type() string
	// Validate checks required elements and coded-value domains.
	Validate() error
}

// Identifier is a business identifier (e.g. an MRN).
type Identifier struct {
	System string `json:"system,omitempty"`
	Value  string `json:"value"`
}

// HumanName carries a patient or practitioner name.
type HumanName struct {
	Family string   `json:"family,omitempty"`
	Given  []string `json:"given,omitempty"`
	Text   string   `json:"text,omitempty"`
}

// Coding is one code from a terminology system (LOINC, SNOMED, RxNorm).
type Coding struct {
	System  string `json:"system,omitempty"`
	Code    string `json:"code"`
	Display string `json:"display,omitempty"`
}

// CodeableConcept wraps alternative codings for one concept.
type CodeableConcept struct {
	Coding []Coding `json:"coding,omitempty"`
	Text   string   `json:"text,omitempty"`
}

// Reference points at another resource ("Patient/123").
type Reference struct {
	Reference string `json:"reference,omitempty"`
	Display   string `json:"display,omitempty"`
}

// Quantity is a measured amount.
type Quantity struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
}

// Patient is the FHIR Patient resource subset.
type Patient struct {
	ResourceType string       `json:"resourceType"`
	ID           string       `json:"id,omitempty"`
	Identifier   []Identifier `json:"identifier,omitempty"`
	Name         []HumanName  `json:"name,omitempty"`
	Gender       string       `json:"gender,omitempty"`
	BirthDate    string       `json:"birthDate,omitempty"` // YYYY-MM-DD
	Address      []Address    `json:"address,omitempty"`
	Telecom      []Telecom    `json:"telecom,omitempty"`
}

// Address is a postal address (quasi-identifier for anonymization).
type Address struct {
	City       string `json:"city,omitempty"`
	State      string `json:"state,omitempty"`
	PostalCode string `json:"postalCode,omitempty"`
}

// Telecom is a phone/email contact point.
type Telecom struct {
	System string `json:"system,omitempty"` // phone | email
	Value  string `json:"value,omitempty"`
}

// Type implements Resource.
func (p *Patient) Type() string { return "Patient" }

// Validate implements Resource.
func (p *Patient) Validate() error {
	if p.ResourceType != "Patient" {
		return fmt.Errorf("%w: resourceType %q", ErrInvalid, p.ResourceType)
	}
	switch p.Gender {
	case "", "male", "female", "other", "unknown":
	default:
		return fmt.Errorf("%w: gender %q", ErrInvalid, p.Gender)
	}
	if p.BirthDate != "" {
		if _, err := time.Parse("2006-01-02", p.BirthDate); err != nil {
			return fmt.Errorf("%w: birthDate %q", ErrInvalid, p.BirthDate)
		}
	}
	return nil
}

// Observation is the FHIR Observation subset (lab results, vitals).
type Observation struct {
	ResourceType      string          `json:"resourceType"`
	ID                string          `json:"id,omitempty"`
	Status            string          `json:"status"`
	Code              CodeableConcept `json:"code"`
	Subject           Reference       `json:"subject,omitempty"`
	EffectiveDateTime string          `json:"effectiveDateTime,omitempty"` // RFC 3339
	ValueQuantity     *Quantity       `json:"valueQuantity,omitempty"`
	ValueString       string          `json:"valueString,omitempty"`
}

// Observation status codes (FHIR value set, subset).
var observationStatuses = map[string]bool{
	"registered": true, "preliminary": true, "final": true,
	"amended": true, "corrected": true, "cancelled": true,
	"entered-in-error": true, "unknown": true,
}

// Type implements Resource.
func (o *Observation) Type() string { return "Observation" }

// Validate implements Resource.
func (o *Observation) Validate() error {
	if o.ResourceType != "Observation" {
		return fmt.Errorf("%w: resourceType %q", ErrInvalid, o.ResourceType)
	}
	if !observationStatuses[o.Status] {
		return fmt.Errorf("%w: observation status %q", ErrInvalid, o.Status)
	}
	if len(o.Code.Coding) == 0 && o.Code.Text == "" {
		return fmt.Errorf("%w: observation needs a code", ErrInvalid)
	}
	if o.EffectiveDateTime != "" {
		if _, err := time.Parse(time.RFC3339, o.EffectiveDateTime); err != nil {
			return fmt.Errorf("%w: effectiveDateTime %q", ErrInvalid, o.EffectiveDateTime)
		}
	}
	return nil
}

// Condition is the FHIR Condition subset (diagnoses).
type Condition struct {
	ResourceType   string          `json:"resourceType"`
	ID             string          `json:"id,omitempty"`
	Code           CodeableConcept `json:"code"`
	Subject        Reference       `json:"subject,omitempty"`
	OnsetDate      string          `json:"onsetDateTime,omitempty"`
	ClinicalStatus string          `json:"clinicalStatus,omitempty"`
}

// Type implements Resource.
func (c *Condition) Type() string { return "Condition" }

// Validate implements Resource.
func (c *Condition) Validate() error {
	if c.ResourceType != "Condition" {
		return fmt.Errorf("%w: resourceType %q", ErrInvalid, c.ResourceType)
	}
	if len(c.Code.Coding) == 0 && c.Code.Text == "" {
		return fmt.Errorf("%w: condition needs a code", ErrInvalid)
	}
	switch c.ClinicalStatus {
	case "", "active", "recurrence", "relapse", "inactive", "remission", "resolved":
	default:
		return fmt.Errorf("%w: clinicalStatus %q", ErrInvalid, c.ClinicalStatus)
	}
	return nil
}

// MedicationRequest is the FHIR MedicationRequest subset (prescriptions).
type MedicationRequest struct {
	ResourceType              string          `json:"resourceType"`
	ID                        string          `json:"id,omitempty"`
	Status                    string          `json:"status"`
	MedicationCodeableConcept CodeableConcept `json:"medicationCodeableConcept"`
	Subject                   Reference       `json:"subject,omitempty"`
	AuthoredOn                string          `json:"authoredOn,omitempty"`
}

var medicationStatuses = map[string]bool{
	"active": true, "on-hold": true, "cancelled": true, "completed": true,
	"entered-in-error": true, "stopped": true, "draft": true, "unknown": true,
}

// Type implements Resource.
func (m *MedicationRequest) Type() string { return "MedicationRequest" }

// Validate implements Resource.
func (m *MedicationRequest) Validate() error {
	if m.ResourceType != "MedicationRequest" {
		return fmt.Errorf("%w: resourceType %q", ErrInvalid, m.ResourceType)
	}
	if !medicationStatuses[m.Status] {
		return fmt.Errorf("%w: medication status %q", ErrInvalid, m.Status)
	}
	if len(m.MedicationCodeableConcept.Coding) == 0 && m.MedicationCodeableConcept.Text == "" {
		return fmt.Errorf("%w: medication needs a code", ErrInvalid)
	}
	return nil
}

// BundleEntry wraps one resource inside a bundle.
type BundleEntry struct {
	Resource json.RawMessage `json:"resource"`
}

// Bundle is the FHIR Bundle: the unit of ingestion upload.
type Bundle struct {
	ResourceType string        `json:"resourceType"`
	ID           string        `json:"id,omitempty"`
	Type         string        `json:"type"` // transaction | collection | batch
	Entry        []BundleEntry `json:"entry,omitempty"`
}

// Validate checks the bundle wrapper and every entry.
func (b *Bundle) Validate() error {
	if b.ResourceType != "Bundle" {
		return fmt.Errorf("%w: resourceType %q", ErrInvalid, b.ResourceType)
	}
	switch b.Type {
	case "transaction", "collection", "batch":
	default:
		return fmt.Errorf("%w: bundle type %q", ErrInvalid, b.Type)
	}
	for i, e := range b.Entry {
		res, err := ParseResource(e.Resource)
		if err != nil {
			return fmt.Errorf("fhir: bundle entry %d: %w", i, err)
		}
		if err := res.Validate(); err != nil {
			return fmt.Errorf("fhir: bundle entry %d: %w", i, err)
		}
	}
	return nil
}

// Resources parses and returns every entry's resource.
func (b *Bundle) Resources() ([]Resource, error) {
	out := make([]Resource, 0, len(b.Entry))
	for i, e := range b.Entry {
		res, err := ParseResource(e.Resource)
		if err != nil {
			return nil, fmt.Errorf("fhir: bundle entry %d: %w", i, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// AddResource appends a resource to the bundle.
func (b *Bundle) AddResource(r Resource) error {
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("fhir: marshaling %s: %w", r.Type(), err)
	}
	b.Entry = append(b.Entry, BundleEntry{Resource: data})
	return nil
}

// NewBundle creates an empty bundle of the given type.
func NewBundle(bundleType string) *Bundle {
	return &Bundle{ResourceType: "Bundle", Type: bundleType}
}

// ParseResource decodes a single resource by its resourceType field.
func ParseResource(data []byte) (Resource, error) {
	var probe struct {
		ResourceType string `json:"resourceType"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("fhir: decoding resource: %w", err)
	}
	var res Resource
	switch probe.ResourceType {
	case "Patient":
		res = &Patient{}
	case "Observation":
		res = &Observation{}
	case "Condition":
		res = &Condition{}
	case "MedicationRequest":
		res = &MedicationRequest{}
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, probe.ResourceType)
	}
	if err := json.Unmarshal(data, res); err != nil {
		return nil, fmt.Errorf("fhir: decoding %s: %w", probe.ResourceType, err)
	}
	return res, nil
}

// ParseBundle decodes and validates a bundle from JSON.
func ParseBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("fhir: decoding bundle: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// Marshal encodes any resource or bundle as JSON.
func Marshal(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("fhir: marshal: %w", err)
	}
	return data, nil
}

// Interface compliance.
var (
	_ Resource = (*Patient)(nil)
	_ Resource = (*Observation)(nil)
	_ Resource = (*Condition)(nil)
	_ Resource = (*MedicationRequest)(nil)
)
