package fhir

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func validPatient() *Patient {
	return &Patient{
		ResourceType: "Patient", ID: "p1",
		Identifier: []Identifier{{System: "urn:mrn", Value: "MRN001"}},
		Name:       []HumanName{{Family: "Doe", Given: []string{"Jane"}}},
		Gender:     "female", BirthDate: "1980-04-02",
		Address: []Address{{City: "Yorktown", State: "NY", PostalCode: "10598"}},
	}
}

func validObservation() *Observation {
	return &Observation{
		ResourceType: "Observation", Status: "final",
		Code:          CodeableConcept{Coding: []Coding{{System: "http://loinc.org", Code: "4548-4", Display: "HbA1c"}}},
		Subject:       Reference{Reference: "Patient/p1"},
		ValueQuantity: &Quantity{Value: 7.2, Unit: "%"},
	}
}

func TestPatientValidation(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Patient)
		wantErr bool
	}{
		{"valid", func(p *Patient) {}, false},
		{"no optional fields", func(p *Patient) { p.Name = nil; p.Gender = ""; p.BirthDate = "" }, false},
		{"wrong resourceType", func(p *Patient) { p.ResourceType = "Pat" }, true},
		{"bad gender", func(p *Patient) { p.Gender = "robot" }, true},
		{"bad birthDate", func(p *Patient) { p.BirthDate = "04/02/1980" }, true},
		{"impossible date", func(p *Patient) { p.BirthDate = "1980-13-45" }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := validPatient()
			tt.mutate(p)
			err := p.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestObservationValidation(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Observation)
		wantErr bool
	}{
		{"valid", func(o *Observation) {}, false},
		{"text-only code", func(o *Observation) { o.Code = CodeableConcept{Text: "HbA1c"} }, false},
		{"bad status", func(o *Observation) { o.Status = "done" }, true},
		{"no code", func(o *Observation) { o.Code = CodeableConcept{} }, true},
		{"bad time", func(o *Observation) { o.EffectiveDateTime = "yesterday" }, true},
		{"good time", func(o *Observation) { o.EffectiveDateTime = "2016-03-01T10:00:00Z" }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := validObservation()
			tt.mutate(o)
			err := o.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestConditionValidation(t *testing.T) {
	c := &Condition{ResourceType: "Condition",
		Code: CodeableConcept{Coding: []Coding{{Code: "E11.9", Display: "T2D"}}}}
	if err := c.Validate(); err != nil {
		t.Errorf("valid condition: %v", err)
	}
	c.ClinicalStatus = "active"
	if err := c.Validate(); err != nil {
		t.Errorf("active condition: %v", err)
	}
	c.ClinicalStatus = "zombie"
	if err := c.Validate(); err == nil {
		t.Error("bad clinicalStatus accepted")
	}
	c2 := &Condition{ResourceType: "Condition"}
	if err := c2.Validate(); err == nil {
		t.Error("code-less condition accepted")
	}
}

func TestMedicationRequestValidation(t *testing.T) {
	m := &MedicationRequest{ResourceType: "MedicationRequest", Status: "active",
		MedicationCodeableConcept: CodeableConcept{Coding: []Coding{{Code: "860975", Display: "metformin"}}}}
	if err := m.Validate(); err != nil {
		t.Errorf("valid medication: %v", err)
	}
	m.Status = "maybe"
	if err := m.Validate(); err == nil {
		t.Error("bad status accepted")
	}
}

func TestParseResourceDispatch(t *testing.T) {
	tests := []struct {
		json     string
		wantType string
	}{
		{`{"resourceType":"Patient","id":"x"}`, "Patient"},
		{`{"resourceType":"Observation","status":"final","code":{"text":"x"}}`, "Observation"},
		{`{"resourceType":"Condition","code":{"text":"x"}}`, "Condition"},
		{`{"resourceType":"MedicationRequest","status":"active","medicationCodeableConcept":{"text":"x"}}`, "MedicationRequest"},
	}
	for _, tt := range tests {
		res, err := ParseResource([]byte(tt.json))
		if err != nil {
			t.Errorf("ParseResource(%s): %v", tt.wantType, err)
			continue
		}
		if res.Type() != tt.wantType {
			t.Errorf("Type() = %s, want %s", res.Type(), tt.wantType)
		}
	}
	if _, err := ParseResource([]byte(`{"resourceType":"Spaceship"}`)); !errors.Is(err, ErrUnknownType) {
		t.Errorf("unknown type: %v", err)
	}
	if _, err := ParseResource([]byte(`{broken`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestBundleRoundTrip(t *testing.T) {
	b := NewBundle("transaction")
	if err := b.AddResource(validPatient()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddResource(validObservation()); err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ParseBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	resources, err := b2.Resources()
	if err != nil {
		t.Fatal(err)
	}
	if len(resources) != 2 {
		t.Fatalf("resources = %d, want 2", len(resources))
	}
	if p, ok := resources[0].(*Patient); !ok || p.ID != "p1" {
		t.Errorf("entry 0 = %+v", resources[0])
	}
	if o, ok := resources[1].(*Observation); !ok || o.ValueQuantity.Value != 7.2 {
		t.Errorf("entry 1 = %+v", resources[1])
	}
}

func TestBundleValidation(t *testing.T) {
	if err := NewBundle("collection").Validate(); err != nil {
		t.Errorf("empty collection: %v", err)
	}
	if err := NewBundle("party").Validate(); err == nil {
		t.Error("bad bundle type accepted")
	}
	b := NewBundle("collection")
	b.Entry = append(b.Entry, BundleEntry{Resource: []byte(`{"resourceType":"Patient","gender":"robot"}`)})
	if err := b.Validate(); err == nil {
		t.Error("bundle with invalid entry accepted")
	}
	b2 := NewBundle("collection")
	b2.Entry = append(b2.Entry, BundleEntry{Resource: []byte(`{"resourceType":"Alien"}`)})
	if err := b2.Validate(); err == nil {
		t.Error("bundle with unknown entry type accepted")
	}
	if _, err := ParseBundle([]byte(`{bad`)); err == nil {
		t.Error("malformed bundle JSON accepted")
	}
}

const sampleHL7 = "MSH|^~\\&|LAB|HOSP|EHR|HOSP|20160301||ORU^R01|123|P|2.5\r" +
	"PID|1||MRN001||Doe^Jane||19800402|F|||^^Yorktown^NY^10598\r" +
	"OBX|1|NM|4548-4^HbA1c||7.2|%\r" +
	"OBX|2|ST|1234-5^Note||stable\r" +
	"DG1|1||E11.9^Type 2 diabetes\r" +
	"RXE||860975^metformin\r"

func TestHL7ToBundle(t *testing.T) {
	b, err := HL7ToBundle(sampleHL7)
	if err != nil {
		t.Fatalf("HL7ToBundle: %v", err)
	}
	resources, err := b.Resources()
	if err != nil {
		t.Fatal(err)
	}
	if len(resources) != 5 {
		t.Fatalf("resources = %d, want 5", len(resources))
	}
	p := resources[0].(*Patient)
	if p.ID != "MRN001" || p.BirthDate != "1980-04-02" || p.Gender != "female" {
		t.Errorf("patient = %+v", p)
	}
	if p.Name[0].Family != "Doe" || p.Name[0].Given[0] != "Jane" {
		t.Errorf("name = %+v", p.Name)
	}
	if p.Address[0].PostalCode != "10598" || p.Address[0].City != "Yorktown" {
		t.Errorf("address = %+v", p.Address)
	}
	o := resources[1].(*Observation)
	if o.ValueQuantity == nil || o.ValueQuantity.Value != 7.2 || o.ValueQuantity.Unit != "%" {
		t.Errorf("observation = %+v", o)
	}
	if o.Subject.Reference != "Patient/MRN001" {
		t.Errorf("subject = %q", o.Subject.Reference)
	}
	txt := resources[2].(*Observation)
	if txt.ValueString != "stable" {
		t.Errorf("text obs = %+v", txt)
	}
	c := resources[3].(*Condition)
	if c.Code.Coding[0].Code != "E11.9" {
		t.Errorf("condition = %+v", c)
	}
	m := resources[4].(*MedicationRequest)
	if m.MedicationCodeableConcept.Coding[0].Code != "860975" {
		t.Errorf("medication = %+v", m)
	}
}

func TestHL7Errors(t *testing.T) {
	tests := []struct {
		name string
		msg  string
	}{
		{"empty", ""},
		{"no MSH", "PID|1||MRN001\r"},
		{"PID without id", "MSH|^~\\&|A|B\rPID|1||\r"},
		{"OBX bad numeric", "MSH|^~\\&|A|B\rPID|1||M1\rOBX|1|NM|X^Y||notanumber|\r"},
		{"OBX missing code", "MSH|^~\\&|A|B\rPID|1||M1\rOBX|1|NM|||5|\r"},
		{"DG1 missing code", "MSH|^~\\&|A|B\rPID|1||M1\rDG1|1||\r"},
		{"RXE missing code", "MSH|^~\\&|A|B\rPID|1||M1\rRXE||\r"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := HL7ToBundle(tt.msg); !errors.Is(err, ErrHL7) {
				t.Errorf("got %v, want ErrHL7", err)
			}
		})
	}
}

func TestHL7NewlineTolerance(t *testing.T) {
	// Interface engines emit \r, files often have \n or \r\n.
	for _, sep := range []string{"\n", "\r\n"} {
		msg := strings.ReplaceAll(sampleHL7, "\r", sep)
		if _, err := HL7ToBundle(msg); err != nil {
			t.Errorf("separator %q: %v", sep, err)
		}
	}
}

func TestHL7RoundTrip(t *testing.T) {
	b, err := HL7ToBundle(sampleHL7)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := BundleToHL7(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := HL7ToBundle(msg)
	if err != nil {
		t.Fatalf("re-parsing generated HL7: %v\n%s", err, msg)
	}
	r1, _ := b.Resources()
	r2, _ := b2.Resources()
	if len(r1) != len(r2) {
		t.Fatalf("round trip lost resources: %d vs %d", len(r1), len(r2))
	}
	p1, p2 := r1[0].(*Patient), r2[0].(*Patient)
	if p1.ID != p2.ID || p1.BirthDate != p2.BirthDate || p1.Gender != p2.Gender {
		t.Errorf("patient round trip: %+v vs %+v", p1, p2)
	}
	o1, o2 := r1[1].(*Observation), r2[1].(*Observation)
	if o1.ValueQuantity.Value != o2.ValueQuantity.Value {
		t.Errorf("observation round trip: %v vs %v", o1.ValueQuantity, o2.ValueQuantity)
	}
}

func TestHL7UnknownSegmentsIgnored(t *testing.T) {
	msg := "MSH|^~\\&|A|B\rPID|1||M1\rZZZ|custom|stuff\rNTE|1|note\r"
	b, err := HL7ToBundle(msg)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := b.Resources()
	if len(res) != 1 {
		t.Errorf("resources = %d, want 1 (unknown segments ignored)", len(res))
	}
}

// Property: any patient built from constrained random parts survives the
// FHIR→HL7→FHIR round trip with identity on the HL7-representable
// fields.
func TestQuickHL7PatientRoundTrip(t *testing.T) {
	genders := []string{"male", "female", "other", "unknown"}
	f := func(mrnN uint16, family, given string, genderIdx uint8, y, m, d uint16) bool {
		clean := func(s string) string {
			out := make([]rune, 0, len(s))
			for _, r := range s {
				if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' {
					out = append(out, r)
				}
			}
			if len(out) == 0 {
				return "X"
			}
			if len(out) > 12 {
				out = out[:12]
			}
			return string(out)
		}
		p := &Patient{
			ResourceType: "Patient",
			ID:           fmt.Sprintf("MRN%05d", mrnN),
			Name:         []HumanName{{Family: clean(family), Given: []string{clean(given)}}},
			Gender:       genders[int(genderIdx)%len(genders)],
			BirthDate:    fmt.Sprintf("%04d-%02d-%02d", 1900+int(y)%150, 1+int(m)%12, 1+int(d)%28),
		}
		b := NewBundle("collection")
		if err := b.AddResource(p); err != nil {
			return false
		}
		msg, err := BundleToHL7(b)
		if err != nil {
			return false
		}
		b2, err := HL7ToBundle(msg)
		if err != nil {
			return false
		}
		res, err := b2.Resources()
		if err != nil || len(res) != 1 {
			return false
		}
		p2, ok := res[0].(*Patient)
		if !ok {
			return false
		}
		return p2.ID == p.ID && p2.Gender == p.Gender && p2.BirthDate == p.BirthDate &&
			p2.Name[0].Family == p.Name[0].Family && p2.Name[0].Given[0] == p.Name[0].Given[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
