package fhir

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// HL7v2 adapter (§II-B): transforms pipe-delimited HL7 v2.x messages to
// FHIR bundles and back. Supported segments cover the ingestion paths
// the applications need:
//
//	MSH — message header (required first segment)
//	PID — patient identification → Patient
//	OBX — observation result → Observation
//	DG1 — diagnosis → Condition
//	RXE — pharmacy encoded order → MedicationRequest
//
// Unknown segments are ignored, as HL7 interface engines conventionally
// do.

// ErrHL7 is the base error for HL7 parse failures.
var ErrHL7 = errors.New("fhir: malformed HL7 message")

// HL7ToBundle parses an HL7 v2 message into a FHIR collection bundle.
func HL7ToBundle(message string) (*Bundle, error) {
	message = strings.TrimSpace(strings.ReplaceAll(message, "\r\n", "\r"))
	message = strings.ReplaceAll(message, "\n", "\r")
	if message == "" {
		return nil, fmt.Errorf("%w: empty message", ErrHL7)
	}
	segments := strings.Split(message, "\r")
	if !strings.HasPrefix(segments[0], "MSH|") {
		return nil, fmt.Errorf("%w: missing MSH header", ErrHL7)
	}
	b := NewBundle("collection")
	var patientRef string
	for i, seg := range segments {
		if seg == "" {
			continue
		}
		fields := strings.Split(seg, "|")
		switch fields[0] {
		case "MSH":
			// Field 8 (index since MSH counts the separator itself) is the
			// message type; we accept any.
		case "PID":
			p, err := pidToPatient(fields)
			if err != nil {
				return nil, fmt.Errorf("%w: segment %d: %v", ErrHL7, i, err)
			}
			patientRef = "Patient/" + p.ID
			if err := b.AddResource(p); err != nil {
				return nil, err
			}
		case "OBX":
			o, err := obxToObservation(fields, patientRef)
			if err != nil {
				return nil, fmt.Errorf("%w: segment %d: %v", ErrHL7, i, err)
			}
			if err := b.AddResource(o); err != nil {
				return nil, err
			}
		case "DG1":
			c, err := dg1ToCondition(fields, patientRef)
			if err != nil {
				return nil, fmt.Errorf("%w: segment %d: %v", ErrHL7, i, err)
			}
			if err := b.AddResource(c); err != nil {
				return nil, err
			}
		case "RXE":
			m, err := rxeToMedication(fields, patientRef)
			if err != nil {
				return nil, fmt.Errorf("%w: segment %d: %v", ErrHL7, i, err)
			}
			if err := b.AddResource(m); err != nil {
				return nil, err
			}
		}
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

func field(fields []string, i int) string {
	if i < len(fields) {
		return fields[i]
	}
	return ""
}

func component(f string, i int) string {
	parts := strings.Split(f, "^")
	if i < len(parts) {
		return parts[i]
	}
	return ""
}

func pidToPatient(fields []string) (*Patient, error) {
	id := component(field(fields, 3), 0)
	if id == "" {
		return nil, errors.New("PID-3 patient identifier missing")
	}
	p := &Patient{ResourceType: "Patient", ID: id,
		Identifier: []Identifier{{System: "urn:mrn", Value: id}}}
	if name := field(fields, 5); name != "" {
		hn := HumanName{Family: component(name, 0)}
		if given := component(name, 1); given != "" {
			hn.Given = []string{given}
		}
		p.Name = []HumanName{hn}
	}
	if dob := field(fields, 7); len(dob) >= 8 {
		p.BirthDate = fmt.Sprintf("%s-%s-%s", dob[0:4], dob[4:6], dob[6:8])
	}
	switch field(fields, 8) {
	case "M":
		p.Gender = "male"
	case "F":
		p.Gender = "female"
	case "O":
		p.Gender = "other"
	case "U":
		p.Gender = "unknown"
	}
	if addr := field(fields, 11); addr != "" {
		p.Address = []Address{{
			City:       component(addr, 2),
			State:      component(addr, 3),
			PostalCode: component(addr, 4),
		}}
	}
	return p, nil
}

func obxToObservation(fields []string, patientRef string) (*Observation, error) {
	codeField := field(fields, 3)
	code := component(codeField, 0)
	if code == "" {
		return nil, errors.New("OBX-3 observation identifier missing")
	}
	o := &Observation{
		ResourceType: "Observation",
		Status:       "final",
		Code: CodeableConcept{Coding: []Coding{{
			System: "http://loinc.org", Code: code, Display: component(codeField, 1),
		}}},
		Subject: Reference{Reference: patientRef},
	}
	valueType := field(fields, 2)
	raw := field(fields, 5)
	switch valueType {
	case "NM":
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("OBX-5 numeric value %q: %v", raw, err)
		}
		o.ValueQuantity = &Quantity{Value: v, Unit: component(field(fields, 6), 0)}
	default:
		o.ValueString = raw
	}
	return o, nil
}

func dg1ToCondition(fields []string, patientRef string) (*Condition, error) {
	codeField := field(fields, 3)
	code := component(codeField, 0)
	if code == "" {
		return nil, errors.New("DG1-3 diagnosis code missing")
	}
	return &Condition{
		ResourceType: "Condition",
		Code: CodeableConcept{Coding: []Coding{{
			System: "http://hl7.org/fhir/sid/icd-10", Code: code, Display: component(codeField, 1),
		}}},
		Subject:        Reference{Reference: patientRef},
		ClinicalStatus: "active",
	}, nil
}

func rxeToMedication(fields []string, patientRef string) (*MedicationRequest, error) {
	codeField := field(fields, 2)
	code := component(codeField, 0)
	if code == "" {
		return nil, errors.New("RXE-2 give code missing")
	}
	return &MedicationRequest{
		ResourceType: "MedicationRequest",
		Status:       "active",
		MedicationCodeableConcept: CodeableConcept{Coding: []Coding{{
			System: "http://www.nlm.nih.gov/research/umls/rxnorm",
			Code:   code, Display: component(codeField, 1),
		}}},
		Subject: Reference{Reference: patientRef},
	}, nil
}

// BundleToHL7 renders a bundle back to an HL7 v2 message ("from HL7 to
// FHIR and back"). Resources without an HL7 mapping are skipped.
func BundleToHL7(b *Bundle) (string, error) {
	resources, err := b.Resources()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("MSH|^~\\&|HEALTHCLOUD|PLATFORM|||||ADT^A01|1|P|2.5\r")
	obxSeq := 0
	for _, res := range resources {
		switch r := res.(type) {
		case *Patient:
			name := ""
			if len(r.Name) > 0 {
				name = r.Name[0].Family
				if len(r.Name[0].Given) > 0 {
					name += "^" + r.Name[0].Given[0]
				}
			}
			dob := strings.ReplaceAll(r.BirthDate, "-", "")
			sex := map[string]string{"male": "M", "female": "F", "other": "O", "unknown": "U"}[r.Gender]
			addr := ""
			if len(r.Address) > 0 {
				addr = fmt.Sprintf("^^%s^%s^%s", r.Address[0].City, r.Address[0].State, r.Address[0].PostalCode)
			}
			fmt.Fprintf(&sb, "PID|1||%s||%s||%s|%s|||%s\r", r.ID, name, dob, sex, addr)
		case *Observation:
			obxSeq++
			code := ""
			display := ""
			if len(r.Code.Coding) > 0 {
				code = r.Code.Coding[0].Code
				display = r.Code.Coding[0].Display
			}
			if r.ValueQuantity != nil {
				fmt.Fprintf(&sb, "OBX|%d|NM|%s^%s||%g|%s\r", obxSeq, code, display, r.ValueQuantity.Value, r.ValueQuantity.Unit)
			} else {
				fmt.Fprintf(&sb, "OBX|%d|ST|%s^%s||%s|\r", obxSeq, code, display, r.ValueString)
			}
		case *Condition:
			code, display := "", ""
			if len(r.Code.Coding) > 0 {
				code, display = r.Code.Coding[0].Code, r.Code.Coding[0].Display
			}
			fmt.Fprintf(&sb, "DG1|1||%s^%s\r", code, display)
		case *MedicationRequest:
			code, display := "", ""
			if len(r.MedicationCodeableConcept.Coding) > 0 {
				code = r.MedicationCodeableConcept.Coding[0].Code
				display = r.MedicationCodeableConcept.Coding[0].Display
			}
			fmt.Fprintf(&sb, "RXE||%s^%s\r", code, display)
		}
	}
	return sb.String(), nil
}
