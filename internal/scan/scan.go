// Package scan implements the ingestion pipeline's data filtration
// service (§IV-B1): "the ingestion service employs a data filtration
// system to determine if the data contains any malware. If so, the
// filtration services filter out the record" and report it to the
// malware blockchain network. Detection is signature-based — byte
// patterns registered by the malware-management network's peers — plus
// sender risk analytics ("it can also employ analytics in order to
// determine risky senders or risky records").
package scan

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrMalware is returned when a payload matches a signature.
var ErrMalware = errors.New("scan: malware signature matched")

// Signature is one registered byte pattern.
type Signature struct {
	Name     string
	Pattern  []byte
	Severity string // low | medium | high
}

// Finding reports one matched signature.
type Finding struct {
	Signature Signature
	Offset    int
}

// Scanner is the filtration service. The zero value is unusable; create
// with NewScanner.
type Scanner struct {
	mu         sync.RWMutex
	signatures []Signature
	// sender risk analytics
	senderTotal map[string]int
	senderBad   map[string]int
}

// NewScanner creates a scanner preloaded with the given signatures.
func NewScanner(sigs ...Signature) (*Scanner, error) {
	s := &Scanner{
		senderTotal: make(map[string]int),
		senderBad:   make(map[string]int),
	}
	for _, sig := range sigs {
		if err := s.AddSignature(sig); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// AddSignature registers a pattern (the malware blockchain network's
// peers — cloud vendor, software vendors, national vulnerability
// organizations — feed these in).
func (s *Scanner) AddSignature(sig Signature) error {
	if sig.Name == "" || len(sig.Pattern) == 0 {
		return errors.New("scan: signature needs a name and a non-empty pattern")
	}
	switch sig.Severity {
	case "low", "medium", "high":
	default:
		return fmt.Errorf("scan: bad severity %q", sig.Severity)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.signatures = append(s.signatures, sig)
	return nil
}

// SignatureCount returns the number of registered signatures.
func (s *Scanner) SignatureCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.signatures)
}

// Scan checks a payload from a sender. It records the outcome in the
// sender risk statistics and returns ErrMalware with findings when any
// signature matches.
func (s *Scanner) Scan(sender string, payload []byte) ([]Finding, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.senderTotal[sender]++
	var findings []Finding
	for _, sig := range s.signatures {
		if off := bytes.Index(payload, sig.Pattern); off >= 0 {
			findings = append(findings, Finding{Signature: sig, Offset: off})
		}
	}
	if len(findings) > 0 {
		s.senderBad[sender]++
		return findings, fmt.Errorf("%w: %d finding(s), first %q", ErrMalware, len(findings), findings[0].Signature.Name)
	}
	return nil, nil
}

// SenderRisk returns the fraction of a sender's submissions that carried
// malware, and the sample size.
func (s *Scanner) SenderRisk(sender string) (risk float64, submissions int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := s.senderTotal[sender]
	if total == 0 {
		return 0, 0
	}
	return float64(s.senderBad[sender]) / float64(total), total
}

// RiskySenders returns senders whose malware fraction meets the
// threshold, given at least minSubmissions observations, sorted by
// descending risk then name.
func (s *Scanner) RiskySenders(threshold float64, minSubmissions int) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	type ranked struct {
		name string
		risk float64
	}
	var out []ranked
	for sender, total := range s.senderTotal {
		if total < minSubmissions {
			continue
		}
		risk := float64(s.senderBad[sender]) / float64(total)
		if risk >= threshold {
			out = append(out, ranked{sender, risk})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].risk != out[j].risk {
			return out[i].risk > out[j].risk
		}
		return out[i].name < out[j].name
	})
	names := make([]string, len(out))
	for i, r := range out {
		names[i] = r.name
	}
	return names
}

// DefaultSignatures returns a starter signature set for tests and
// examples (EICAR-style markers, not real malware).
func DefaultSignatures() []Signature {
	return []Signature{
		{Name: "eicar-test", Pattern: []byte(`X5O!P%@AP[4\PZX54(P^)7CC)7}$EICAR`), Severity: "high"},
		{Name: "script-injection", Pattern: []byte("<script>evil"), Severity: "medium"},
		{Name: "shell-dropper", Pattern: []byte("curl http://malware"), Severity: "high"},
	}
}
