package scan

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newTestScanner(t *testing.T) *Scanner {
	t.Helper()
	s, err := NewScanner(DefaultSignatures()...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCleanPayloadPasses(t *testing.T) {
	s := newTestScanner(t)
	findings, err := s.Scan("hospital-a", []byte(`{"resourceType":"Patient"}`))
	if err != nil || findings != nil {
		t.Errorf("clean payload: %v, %v", findings, err)
	}
}

func TestMalwareDetected(t *testing.T) {
	s := newTestScanner(t)
	payload := []byte(`prefix <script>evil suffix`)
	findings, err := s.Scan("hospital-a", payload)
	if !errors.Is(err, ErrMalware) {
		t.Fatalf("got %v, want ErrMalware", err)
	}
	if len(findings) != 1 || findings[0].Signature.Name != "script-injection" {
		t.Errorf("findings = %+v", findings)
	}
	if findings[0].Offset != 7 {
		t.Errorf("offset = %d, want 7", findings[0].Offset)
	}
}

func TestMultipleFindings(t *testing.T) {
	s := newTestScanner(t)
	payload := []byte(`<script>evil and curl http://malware`)
	findings, err := s.Scan("x", payload)
	if !errors.Is(err, ErrMalware) {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Errorf("findings = %d, want 2", len(findings))
	}
}

func TestSignatureValidation(t *testing.T) {
	s, _ := NewScanner()
	if err := s.AddSignature(Signature{Name: "", Pattern: []byte("x"), Severity: "low"}); err == nil {
		t.Error("unnamed signature accepted")
	}
	if err := s.AddSignature(Signature{Name: "n", Pattern: nil, Severity: "low"}); err == nil {
		t.Error("empty pattern accepted")
	}
	if err := s.AddSignature(Signature{Name: "n", Pattern: []byte("x"), Severity: "catastrophic"}); err == nil {
		t.Error("bad severity accepted")
	}
	if _, err := NewScanner(Signature{}); err == nil {
		t.Error("NewScanner accepted invalid signature")
	}
	if s.SignatureCount() != 0 {
		t.Errorf("count = %d", s.SignatureCount())
	}
}

func TestSenderRiskAnalytics(t *testing.T) {
	s := newTestScanner(t)
	// hospital-a: 1 bad out of 4; shady-vendor: 3 bad out of 3.
	for i := 0; i < 3; i++ {
		s.Scan("hospital-a", []byte("clean"))
	}
	s.Scan("hospital-a", []byte("<script>evil"))
	for i := 0; i < 3; i++ {
		s.Scan("shady-vendor", []byte("curl http://malware"))
	}
	risk, n := s.SenderRisk("hospital-a")
	if n != 4 || risk != 0.25 {
		t.Errorf("hospital-a risk = %f over %d", risk, n)
	}
	risk, n = s.SenderRisk("shady-vendor")
	if n != 3 || risk != 1.0 {
		t.Errorf("shady-vendor risk = %f over %d", risk, n)
	}
	if risk, n := s.SenderRisk("unknown"); risk != 0 || n != 0 {
		t.Errorf("unknown sender = %f, %d", risk, n)
	}
	risky := s.RiskySenders(0.5, 2)
	if len(risky) != 1 || risky[0] != "shady-vendor" {
		t.Errorf("risky = %v", risky)
	}
	// min-submission gate hides low-volume senders.
	s2 := newTestScanner(t)
	s2.Scan("one-shot", []byte("<script>evil"))
	if got := s2.RiskySenders(0.5, 2); len(got) != 0 {
		t.Errorf("low-volume sender surfaced: %v", got)
	}
}

func TestRiskySendersOrdering(t *testing.T) {
	s := newTestScanner(t)
	// b-sender: 100%, a-sender: 100% (tie broken by name), c-sender: 50%.
	s.Scan("b-sender", []byte("<script>evil"))
	s.Scan("b-sender", []byte("<script>evil"))
	s.Scan("a-sender", []byte("<script>evil"))
	s.Scan("a-sender", []byte("<script>evil"))
	s.Scan("c-sender", []byte("<script>evil"))
	s.Scan("c-sender", []byte("clean"))
	got := s.RiskySenders(0.4, 2)
	want := []string{"a-sender", "b-sender", "c-sender"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}

func TestConcurrentScans(t *testing.T) {
	s := newTestScanner(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if i%5 == 0 {
					s.Scan(fmt.Sprintf("s-%d", g), []byte("<script>evil"))
				} else {
					s.Scan(fmt.Sprintf("s-%d", g), []byte("clean"))
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		risk, n := s.SenderRisk(fmt.Sprintf("s-%d", g))
		if n != 100 || risk != 0.2 {
			t.Errorf("s-%d: risk=%f n=%d", g, risk, n)
		}
	}
}
