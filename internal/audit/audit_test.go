package audit

import (
	"errors"
	"testing"
	"time"

	"healthcloud/internal/attest"
	"healthcloud/internal/tpm"
)

func TestRecordAndFind(t *testing.T) {
	l := NewLog()
	l.Record(Event{Level: LevelInfo, Service: "ingest", Action: "upload", Actor: "user-1", Resource: "ref-1"})
	l.Record(Event{Level: LevelError, Service: "ingest", Action: "validate", Actor: "user-1", Err: "schema mismatch"})
	l.Record(Event{Level: LevelInfo, Service: "export", Action: "anonymized-export", Actor: "user-2"})

	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if got := l.Find(Query{Service: "ingest"}); len(got) != 2 {
		t.Errorf("by service: %d", len(got))
	}
	if got := l.Find(Query{Actor: "user-2"}); len(got) != 1 {
		t.Errorf("by actor: %d", len(got))
	}
	if got := l.Find(Query{Level: LevelError}); len(got) != 1 || got[0].Err != "schema mismatch" {
		t.Errorf("by level: %+v", got)
	}
	if got := l.Find(Query{Action: "upload", Service: "export"}); len(got) != 0 {
		t.Errorf("conjunctive filter: %d", len(got))
	}
}

func TestTimeBoundedQueries(t *testing.T) {
	l := NewLog()
	base := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		l.Record(Event{At: base.Add(time.Duration(i) * time.Hour), Service: "s", Action: "a"})
	}
	got := l.Find(Query{Since: base.Add(90 * time.Minute), Until: base.Add(210 * time.Minute)})
	if len(got) != 2 {
		t.Errorf("window query = %d events, want 2", len(got))
	}
}

func TestPHIRejectedFromLogs(t *testing.T) {
	l := NewLog()
	err := l.Record(Event{Service: "ingest", Action: "upload",
		Detail: "uploaded for jane.doe@example.com"})
	if !errors.Is(err, ErrSensitive) {
		t.Fatalf("got %v, want ErrSensitive", err)
	}
	// The redaction marker is logged instead.
	got := l.Find(Query{Action: "log-redacted"})
	if len(got) != 1 {
		t.Fatalf("redaction marker missing: %d", len(got))
	}
	if got[0].Level != LevelWarn {
		t.Errorf("marker level = %s", got[0].Level)
	}
	// The original PHI never appears anywhere.
	for _, e := range l.Find(Query{}) {
		if e.Detail != "" && e.Action != "log-redacted" {
			t.Errorf("unexpected event: %+v", e)
		}
	}
}

func TestCountBy(t *testing.T) {
	l := NewLog()
	l.Record(Event{Service: "ingest", Action: "upload", Actor: "u1", Level: LevelInfo})
	l.Record(Event{Service: "ingest", Action: "store", Actor: "u1", Level: LevelInfo})
	l.Record(Event{Service: "export", Action: "export", Actor: "u2", Level: LevelError})
	if got := l.CountBy("service"); got["ingest"] != 2 || got["export"] != 1 {
		t.Errorf("by service: %v", got)
	}
	if got := l.CountBy("actor"); got["u1"] != 2 {
		t.Errorf("by actor: %v", got)
	}
	if got := l.CountBy("level"); got["error"] != 1 {
		t.Errorf("by level: %v", got)
	}
	if got := l.CountBy("flavor"); got != nil {
		t.Errorf("unknown dimension: %v", got)
	}
}

// newAttestedHost enrolls a TPM with a golden kernel value and returns
// the pieces a CM test needs.
func newAttestedHost(t *testing.T) (*attest.Service, *tpm.TPM) {
	t.Helper()
	svc := attest.NewService()
	host, err := tpm.New("host-1")
	if err != nil {
		t.Fatal(err)
	}
	svc.EnrollTPM("host-1", host.AttestationKey())
	host.Extend(tpm.PCRKernel, "kernel-v1", []byte("kernel-v1"))
	golden, _ := host.ReadPCR(tpm.PCRKernel)
	if err := svc.SetGoldenValue("host-1", attest.LayerGuestOS, golden); err != nil {
		t.Fatal(err)
	}
	return svc, host
}

func TestChangeLifecycle(t *testing.T) {
	attSvc, host := newAttestedHost(t)
	log := NewLog()
	cm := NewChangeManager(attSvc, log)

	// Simulate the patch being measured, then run CM.
	host.Extend(tpm.PCRKernel, "kernel-v2", []byte("kernel-v2"))
	newGolden, _ := host.ReadPCR(tpm.PCRKernel)

	id := cm.Describe("host-1/guest-os", "host-1", attest.LayerGuestOS, newGolden, "kernel security patch")
	c, err := cm.Change(id)
	if err != nil || c.State != ChangeDescribed {
		t.Fatalf("after describe: %+v, %v", c, err)
	}
	// Approval before evaluation is an invalid transition.
	if err := cm.Approve(id); !errors.Is(err, ErrBadTransition) {
		t.Errorf("approve before evaluate: %v", err)
	}
	if err := cm.Evaluate(id, "CVE fix, low risk"); err != nil {
		t.Fatal(err)
	}
	if err := cm.Evaluate(id, "again"); !errors.Is(err, ErrBadTransition) {
		t.Errorf("double evaluate: %v", err)
	}
	if err := cm.Approve(id); err != nil {
		t.Fatal(err)
	}
	c, _ = cm.Change(id)
	if c.State != ChangeApplied {
		t.Errorf("state = %s, want applied", c.State)
	}

	// The attestation service now accepts the new kernel.
	nonce, _ := attSvc.Challenge("host-1")
	q, err := host.GenerateQuote(nonce, []int{tpm.PCRKernel})
	if err != nil {
		t.Fatal(err)
	}
	if err := attSvc.AttestLayer("host-1", attest.LayerGuestOS, q); err != nil {
		t.Errorf("post-change attestation: %v", err)
	}

	// The CM trail is in the audit log.
	if got := log.Find(Query{Service: "change-mgmt"}); len(got) != 3 {
		t.Errorf("CM audit events = %d, want 3", len(got))
	}
}

func TestChangeRejection(t *testing.T) {
	attSvc, _ := newAttestedHost(t)
	cm := NewChangeManager(attSvc, NewLog())
	id := cm.Describe("host-1/guest-os", "host-1", attest.LayerGuestOS, []byte("x"), "risky change")
	if err := cm.Reject(id, "insufficient testing"); err != nil {
		t.Fatal(err)
	}
	c, _ := cm.Change(id)
	if c.State != ChangeRejected {
		t.Errorf("state = %s", c.State)
	}
	if err := cm.Reject(id, "again"); !errors.Is(err, ErrBadTransition) {
		t.Errorf("double reject: %v", err)
	}
	if err := cm.Evaluate(id, "too late"); !errors.Is(err, ErrBadTransition) {
		t.Errorf("evaluate after reject: %v", err)
	}
}

func TestChangeUnknownID(t *testing.T) {
	attSvc, _ := newAttestedHost(t)
	cm := NewChangeManager(attSvc, NewLog())
	if err := cm.Evaluate(99, "x"); !errors.Is(err, ErrNoSuchChange) {
		t.Errorf("Evaluate: %v", err)
	}
	if err := cm.Approve(99); !errors.Is(err, ErrNoSuchChange) {
		t.Errorf("Approve: %v", err)
	}
	if err := cm.Reject(99, "x"); !errors.Is(err, ErrNoSuchChange) {
		t.Errorf("Reject: %v", err)
	}
	if _, err := cm.Change(99); !errors.Is(err, ErrNoSuchChange) {
		t.Errorf("Change: %v", err)
	}
}

func TestChangeApproveUnknownTPM(t *testing.T) {
	cm := NewChangeManager(attest.NewService(), NewLog())
	id := cm.Describe("ghost/guest-os", "ghost-tpm", attest.LayerGuestOS, []byte("x"), "change on unenrolled host")
	if err := cm.Evaluate(id, "ok"); err != nil {
		t.Fatal(err)
	}
	if err := cm.Approve(id); err == nil {
		t.Error("approval against unenrolled TPM succeeded")
	}
	c, _ := cm.Change(id)
	if c.State != ChangeEvaluated {
		t.Errorf("state after failed approve = %s, want evaluated", c.State)
	}
}

// TestTimeWindowEdges pins the window semantics the monitor's alert
// queries rely on: Since/Until are inclusive bounds, either may be open,
// and an inverted window matches nothing.
func TestTimeWindowEdges(t *testing.T) {
	l := NewLog()
	base := time.Unix(5000, 0)
	for i := 0; i < 3; i++ {
		l.Record(Event{At: base.Add(time.Duration(i) * time.Minute), Service: "s", Action: "a"})
	}
	if got := l.Find(Query{Since: base, Until: base}); len(got) != 1 {
		t.Errorf("point window = %d events, want 1 (bounds inclusive)", len(got))
	}
	if got := l.Find(Query{Since: base.Add(2 * time.Minute)}); len(got) != 1 {
		t.Errorf("open Until = %d events, want 1", len(got))
	}
	if got := l.Find(Query{Until: base}); len(got) != 1 {
		t.Errorf("open Since = %d events, want 1", len(got))
	}
	if got := l.Find(Query{Since: base.Add(time.Hour), Until: base}); len(got) != 0 {
		t.Errorf("inverted window = %d events, want 0", len(got))
	}
	if got := l.Find(Query{Since: base.Add(-time.Hour), Until: base.Add(time.Hour)}); len(got) != 3 {
		t.Errorf("covering window = %d events, want 3", len(got))
	}
}

// TestCountByEmptyLog checks the zero-traffic analytics path.
func TestCountByEmptyLog(t *testing.T) {
	l := NewLog()
	if got := l.CountBy("service"); len(got) != 0 {
		t.Errorf("empty log CountBy = %v", got)
	}
	if got := l.CountBy("nope"); len(got) != 0 {
		t.Errorf("unknown dimension on empty log = %v", got)
	}
}
