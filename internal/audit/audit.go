// Package audit implements the platform's logging/monitoring and
// auditability services (§II-A, §IV-E) and the change-management (CM)
// workflow (§II-B). Log events are structured and PHI-free ("such logged
// events cannot contain sensitive data" — the logger enforces this with
// the anonymize scanner); log analytics supports the forensic queries
// §IV-E requires; and the CM service runs the describe → evaluate →
// approve pipeline that gates every change to a deployed component,
// updating the Attestation Service's golden values when changes land.
package audit

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"healthcloud/internal/anonymize"
)

// Level is a log severity.
type Level string

// Severities.
const (
	LevelInfo  Level = "info"
	LevelWarn  Level = "warn"
	LevelError Level = "error"
)

// Event is one structured, PHI-free log record.
type Event struct {
	At       time.Time
	Level    Level
	Service  string
	Action   string
	Actor    string
	Resource string
	Detail   string
	Err      string
}

// ErrSensitive is returned when a log event would contain PHI.
var ErrSensitive = errors.New("audit: event contains sensitive data")

// Log is the append-only audit log. Create with NewLog.
type Log struct {
	mu     sync.RWMutex
	events []Event
	clock  func() time.Time
}

// NewLog creates an empty audit log.
func NewLog() *Log {
	return &Log{clock: time.Now}
}

// SetClock injects a time source for tests.
func (l *Log) SetClock(f func() time.Time) { l.clock = f }

// Record appends an event after verifying it carries no direct
// identifiers. Rejected events are replaced by a redaction marker so the
// attempt itself remains auditable.
func (l *Log) Record(e Event) error {
	if e.At.IsZero() {
		e.At = l.clock()
	}
	for _, text := range []string{e.Action, e.Actor, e.Resource, e.Detail, e.Err} {
		if found := anonymize.ScanIdentifiers(text); len(found) > 0 {
			l.mu.Lock()
			l.events = append(l.events, Event{
				At: e.At, Level: LevelWarn, Service: e.Service,
				Action: "log-redacted", Detail: fmt.Sprintf("event dropped: contained %v", found),
			})
			l.mu.Unlock()
			return fmt.Errorf("%w: %v", ErrSensitive, found)
		}
	}
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
	return nil
}

// Query filters events; zero-valued fields match everything.
type Query struct {
	Service string
	Action  string
	Actor   string
	Level   Level
	Since   time.Time
	Until   time.Time
}

// Find returns matching events in order.
func (l *Log) Find(q Query) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Event
	for _, e := range l.events {
		if q.Service != "" && e.Service != q.Service {
			continue
		}
		if q.Action != "" && e.Action != q.Action {
			continue
		}
		if q.Actor != "" && e.Actor != q.Actor {
			continue
		}
		if q.Level != "" && e.Level != q.Level {
			continue
		}
		if !q.Since.IsZero() && e.At.Before(q.Since) {
			continue
		}
		if !q.Until.IsZero() && e.At.After(q.Until) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Len returns the total number of events.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.events)
}

// CountBy aggregates event counts by a dimension ("service", "action",
// "actor", "level") — the log-analytics support for forensics.
func (l *Log) CountBy(dimension string) map[string]int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[string]int)
	for _, e := range l.events {
		var key string
		switch dimension {
		case "service":
			key = e.Service
		case "action":
			key = e.Action
		case "actor":
			key = e.Actor
		case "level":
			key = string(e.Level)
		default:
			return nil
		}
		out[key]++
	}
	return out
}
