package audit

import (
	"errors"
	"fmt"
	"sync"

	"healthcloud/internal/attest"
)

// Change management (§II-B): "All authorized changes are first described,
// evaluated and finally approved in the change management system;
// thereafter the CM service accordingly updates the Attestation Service
// regarding the approved changes and their new signatures."

// ChangeState tracks a change request through its lifecycle.
type ChangeState string

// Lifecycle states, in order.
const (
	ChangeDescribed ChangeState = "described"
	ChangeEvaluated ChangeState = "evaluated"
	ChangeApproved  ChangeState = "approved"
	ChangeApplied   ChangeState = "applied"
	ChangeRejected  ChangeState = "rejected"
)

// ChangeRequest describes one proposed change to a deployed component.
type ChangeRequest struct {
	ID          int
	Component   string       // e.g. "host-1/guest-os"
	TPMName     string       // platform whose golden value changes
	Layer       attest.Layer // trust layer affected
	NewGolden   []byte       // approved PCR value after the change
	Description string
	State       ChangeState
	Evaluation  string
}

// Errors returned by the CM service.
var (
	ErrBadTransition = errors.New("audit: invalid change-state transition")
	ErrNoSuchChange  = errors.New("audit: no such change request")
)

// ChangeManager runs the CM pipeline against an attestation service.
type ChangeManager struct {
	attSvc *attest.Service
	log    *Log

	mu      sync.Mutex
	nextID  int
	changes map[int]*ChangeRequest
}

// NewChangeManager wires CM to the attestation service and audit log.
func NewChangeManager(attSvc *attest.Service, log *Log) *ChangeManager {
	return &ChangeManager{attSvc: attSvc, log: log, changes: make(map[int]*ChangeRequest)}
}

// Describe opens a change request.
func (cm *ChangeManager) Describe(component, tpmName string, layer attest.Layer, newGolden []byte, description string) int {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	cm.nextID++
	id := cm.nextID
	cm.changes[id] = &ChangeRequest{
		ID: id, Component: component, TPMName: tpmName, Layer: layer,
		NewGolden:   append([]byte(nil), newGolden...),
		Description: description, State: ChangeDescribed,
	}
	cm.log.Record(Event{Level: LevelInfo, Service: "change-mgmt", Action: "describe",
		Resource: component, Detail: description})
	return id
}

// Evaluate records an evaluation outcome, moving the change forward.
func (cm *ChangeManager) Evaluate(id int, evaluation string) error {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	c, ok := cm.changes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchChange, id)
	}
	if c.State != ChangeDescribed {
		return fmt.Errorf("%w: %s -> evaluated", ErrBadTransition, c.State)
	}
	c.State = ChangeEvaluated
	c.Evaluation = evaluation
	cm.log.Record(Event{Level: LevelInfo, Service: "change-mgmt", Action: "evaluate",
		Resource: c.Component, Detail: evaluation})
	return nil
}

// Approve approves an evaluated change and pushes the new golden value
// to the attestation service, so the changed component attests again.
func (cm *ChangeManager) Approve(id int) error {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	c, ok := cm.changes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchChange, id)
	}
	if c.State != ChangeEvaluated {
		return fmt.Errorf("%w: %s -> approved", ErrBadTransition, c.State)
	}
	if err := cm.attSvc.SetGoldenValue(c.TPMName, c.Layer, c.NewGolden); err != nil {
		return fmt.Errorf("audit: updating attestation golden value: %w", err)
	}
	c.State = ChangeApplied
	cm.log.Record(Event{Level: LevelInfo, Service: "change-mgmt", Action: "approve",
		Resource: c.Component})
	return nil
}

// Reject closes a change without applying it.
func (cm *ChangeManager) Reject(id int, reason string) error {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	c, ok := cm.changes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchChange, id)
	}
	if c.State == ChangeApplied || c.State == ChangeRejected {
		return fmt.Errorf("%w: %s -> rejected", ErrBadTransition, c.State)
	}
	c.State = ChangeRejected
	cm.log.Record(Event{Level: LevelWarn, Service: "change-mgmt", Action: "reject",
		Resource: c.Component, Detail: reason})
	return nil
}

// Change returns a copy of the request.
func (cm *ChangeManager) Change(id int) (ChangeRequest, error) {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	c, ok := cm.changes[id]
	if !ok {
		return ChangeRequest{}, fmt.Errorf("%w: %d", ErrNoSuchChange, id)
	}
	return *c, nil
}
