package hckrypto

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newTestKMS(t *testing.T) *KMS {
	t.Helper()
	k, err := NewKMS("tenant-a")
	if err != nil {
		t.Fatalf("NewKMS: %v", err)
	}
	return k
}

func TestKMSCreateAndUnwrap(t *testing.T) {
	kms := newTestKMS(t)
	id, dk, err := kms.CreateDataKey("patient-1", "svc-ingest")
	if err != nil {
		t.Fatalf("CreateDataKey: %v", err)
	}
	got, err := kms.UnwrapDataKey(id, "svc-ingest")
	if err != nil {
		t.Fatalf("UnwrapDataKey: %v", err)
	}
	if !bytes.Equal(got, dk) {
		t.Error("unwrapped key differs from created key")
	}
}

func TestKMSAccessControl(t *testing.T) {
	kms := newTestKMS(t)
	id, _, err := kms.CreateDataKey("patient-1", "svc-ingest")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kms.UnwrapDataKey(id, "svc-analytics"); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("unauthorized unwrap: got %v, want ErrAccessDenied", err)
	}
	if err := kms.Grant(id, "svc-analytics"); err != nil {
		t.Fatalf("Grant: %v", err)
	}
	if _, err := kms.UnwrapDataKey(id, "svc-analytics"); err != nil {
		t.Errorf("unwrap after grant: %v", err)
	}
	if err := kms.Revoke(id, "svc-analytics"); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	if _, err := kms.UnwrapDataKey(id, "svc-analytics"); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("unwrap after revoke: got %v, want ErrAccessDenied", err)
	}
}

func TestKMSUnknownKey(t *testing.T) {
	kms := newTestKMS(t)
	if _, err := kms.UnwrapDataKey("nope", "svc"); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("got %v, want ErrKeyNotFound", err)
	}
	if err := kms.Grant("nope", "svc"); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("Grant unknown: got %v, want ErrKeyNotFound", err)
	}
	if err := kms.Shred("nope"); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("Shred unknown: got %v, want ErrKeyNotFound", err)
	}
}

func TestKMSShred(t *testing.T) {
	kms := newTestKMS(t)
	id, dk, err := kms.CreateDataKey("patient-1", "svc")
	if err != nil {
		t.Fatal(err)
	}
	ct, err := EncryptGCM(dk, []byte("phi"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := kms.Shred(id); err != nil {
		t.Fatalf("Shred: %v", err)
	}
	if !kms.Shredded(id) {
		t.Error("key not marked shredded")
	}
	if _, err := kms.UnwrapDataKey(id, "svc"); !errors.Is(err, ErrKeyShredded) {
		t.Errorf("unwrap shredded: got %v, want ErrKeyShredded", err)
	}
	// The ciphertext is now permanently unrecoverable through the KMS; the
	// caller's own copy of dk is the only path, and real deployments zero it.
	_ = ct
}

func TestKMSShredSubject(t *testing.T) {
	kms := newTestKMS(t)
	var patientKeys []string
	for i := 0; i < 3; i++ {
		id, _, err := kms.CreateDataKey("patient-7", "svc")
		if err != nil {
			t.Fatal(err)
		}
		patientKeys = append(patientKeys, id)
	}
	otherID, _, err := kms.CreateDataKey("patient-8", "svc")
	if err != nil {
		t.Fatal(err)
	}
	if n := kms.ShredSubject("patient-7"); n != 3 {
		t.Errorf("ShredSubject = %d, want 3", n)
	}
	for _, id := range patientKeys {
		if !kms.Shredded(id) {
			t.Errorf("key %s should be shredded", id)
		}
	}
	if kms.Shredded(otherID) {
		t.Error("unrelated patient's key was shredded")
	}
	if n := kms.ShredSubject("patient-7"); n != 0 {
		t.Errorf("second ShredSubject = %d, want 0 (idempotent)", n)
	}
}

func TestKMSRotatePreservesKeys(t *testing.T) {
	kms := newTestKMS(t)
	type rec struct {
		id string
		dk SymmetricKey
	}
	var recs []rec
	for i := 0; i < 5; i++ {
		id, dk, err := kms.CreateDataKey(fmt.Sprintf("p-%d", i), "svc")
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec{id, dk})
	}
	if err := kms.RotateMaster(); err != nil {
		t.Fatalf("RotateMaster: %v", err)
	}
	for _, r := range recs {
		got, err := kms.UnwrapDataKey(r.id, "svc")
		if err != nil {
			t.Fatalf("unwrap %s after rotation: %v", r.id, err)
		}
		if !bytes.Equal(got, r.dk) {
			t.Errorf("key %s changed across rotation", r.id)
		}
	}
}

func TestKMSRotateSkipsShredded(t *testing.T) {
	kms := newTestKMS(t)
	id, _, err := kms.CreateDataKey("p", "svc")
	if err != nil {
		t.Fatal(err)
	}
	if err := kms.Shred(id); err != nil {
		t.Fatal(err)
	}
	if err := kms.RotateMaster(); err != nil {
		t.Fatalf("RotateMaster with shredded key: %v", err)
	}
	if _, err := kms.UnwrapDataKey(id, "svc"); !errors.Is(err, ErrKeyShredded) {
		t.Errorf("shredded key resurrected by rotation: %v", err)
	}
}

func TestKMSKeyCount(t *testing.T) {
	kms := newTestKMS(t)
	if kms.KeyCount() != 0 {
		t.Errorf("fresh KMS KeyCount = %d", kms.KeyCount())
	}
	id, _, _ := kms.CreateDataKey("p", "svc")
	kms.CreateDataKey("p", "svc")
	if kms.KeyCount() != 2 {
		t.Errorf("KeyCount = %d, want 2", kms.KeyCount())
	}
	kms.Shred(id)
	if kms.KeyCount() != 1 {
		t.Errorf("KeyCount after shred = %d, want 1", kms.KeyCount())
	}
}

func TestKMSConcurrentUse(t *testing.T) {
	kms := newTestKMS(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				id, dk, err := kms.CreateDataKey(fmt.Sprintf("p-%d", g), "svc")
				if err != nil {
					errs <- err
					return
				}
				got, err := kms.UnwrapDataKey(id, "svc")
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, dk) {
					errs <- fmt.Errorf("key %s mismatch", id)
					return
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 4; i++ {
			if err := kms.RotateMaster(); err != nil {
				errs <- err
			}
		}
		close(done)
	}()
	wg.Wait()
	<-done
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if kms.KeyCount() != 64 {
		t.Errorf("KeyCount = %d, want 64", kms.KeyCount())
	}
}

func TestSignVerify(t *testing.T) {
	sk, err := NewSigningKey(2048)
	if err != nil {
		t.Fatalf("NewSigningKey: %v", err)
	}
	sig, err := sk.Sign([]byte("container image digest"))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	vk := sk.Public()
	if !vk.Verify([]byte("container image digest"), sig) {
		t.Error("valid signature rejected")
	}
	if vk.Verify([]byte("tampered digest"), sig) {
		t.Error("signature over different data accepted")
	}
}

func TestSigningKeyMinimumSize(t *testing.T) {
	if _, err := NewSigningKey(1024); err == nil {
		t.Error("1024-bit key should be rejected")
	}
}

func TestVerifyKeyPEMRoundTrip(t *testing.T) {
	sk, err := NewSigningKey(2048)
	if err != nil {
		t.Fatal(err)
	}
	pemBytes, err := sk.Public().MarshalPEM()
	if err != nil {
		t.Fatalf("MarshalPEM: %v", err)
	}
	vk, err := ParseVerifyKeyPEM(pemBytes)
	if err != nil {
		t.Fatalf("ParseVerifyKeyPEM: %v", err)
	}
	sig, err := sk.Sign([]byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	if !vk.Verify([]byte("msg"), sig) {
		t.Error("parsed key failed to verify")
	}
	if vk.Fingerprint() != sk.Public().Fingerprint() {
		t.Error("fingerprint changed across PEM round trip")
	}
}

func TestParseVerifyKeyPEMErrors(t *testing.T) {
	if _, err := ParseVerifyKeyPEM([]byte("not pem")); err == nil {
		t.Error("garbage input accepted")
	}
}

func TestOAEPRoundTripAndLimit(t *testing.T) {
	sk, err := NewSigningKey(2048)
	if err != nil {
		t.Fatal(err)
	}
	vk := sk.Public()
	maxLen := vk.MaxOAEPPayload()
	if maxLen <= 0 || maxLen >= 256 {
		t.Fatalf("MaxOAEPPayload = %d, expected small positive bound", maxLen)
	}
	msg := bytes.Repeat([]byte{0xAB}, maxLen)
	ct, err := vk.EncryptOAEP(msg)
	if err != nil {
		t.Fatalf("EncryptOAEP at max payload: %v", err)
	}
	pt, err := sk.DecryptOAEP(ct)
	if err != nil {
		t.Fatalf("DecryptOAEP: %v", err)
	}
	if !bytes.Equal(pt, msg) {
		t.Error("OAEP round trip mismatch")
	}
	if _, err := vk.EncryptOAEP(bytes.Repeat([]byte{1}, maxLen+1)); err == nil {
		t.Error("payload over RSA limit accepted — this is exactly why the paper rejects public-key bulk encryption")
	}
}
