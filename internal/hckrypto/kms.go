package hckrypto

import (
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// KMS is the platform's single-tenant key-management system (§IV-B1).
// The paper requires it to be "a single-tenant isolated system that is
// dedicated only to a single customer", ideally hardware-backed; here it
// is an in-process substitute with the same API surface: data-key
// generation under a wrapping master key, need-to-know access control,
// key rotation, and crypto-shredding (destroying a subject's keys renders
// every ciphertext under them unrecoverable, implementing GDPR
// right-to-forget via "encryption-based record deletion", §IV-B1).
//
// The zero value is not usable; construct with NewKMS.
type KMS struct {
	tenant string

	mu        sync.RWMutex
	masterGen uint32
	masters   map[uint32]SymmetricKey // generation -> master key
	aeads     map[uint32]cipher.AEAD  // generation -> cached wrapping AEAD
	keys      map[string]*managedKey  // key id -> record
	acl       map[string]map[string]bool
	shredded  map[string]bool
	nextID    uint64
}

type managedKey struct {
	id      string
	subject string // owning subject (patient, tenant service, ...)
	gen     uint32 // master generation that wraps it
	wrapped []byte // data key encrypted under masters[gen]
}

// KMS errors.
var (
	ErrKeyNotFound  = errors.New("hckrypto: key not found")
	ErrKeyShredded  = errors.New("hckrypto: key crypto-shredded")
	ErrAccessDenied = errors.New("hckrypto: access to key denied")
)

// NewKMS creates a KMS dedicated to one tenant, with a fresh random
// master key at generation 1.
func NewKMS(tenant string) (*KMS, error) {
	master, err := NewSymmetricKey()
	if err != nil {
		return nil, err
	}
	// The master-key AEAD is cached per generation: every data-key wrap
	// and unwrap (one of each per record sealed or opened) reuses the key
	// schedule instead of re-deriving it, which is the bulk of the
	// allocation cost on the Seal/Open hot path.
	aead, err := NewAEAD(master)
	if err != nil {
		return nil, err
	}
	return &KMS{
		tenant:    tenant,
		masterGen: 1,
		masters:   map[uint32]SymmetricKey{1: master},
		aeads:     map[uint32]cipher.AEAD{1: aead},
		keys:      make(map[string]*managedKey),
		acl:       make(map[string]map[string]bool),
		shredded:  make(map[string]bool),
	}, nil
}

// Tenant returns the tenant this KMS is dedicated to.
func (k *KMS) Tenant() string { return k.tenant }

// CreateDataKey mints a fresh data key bound to subject (e.g. a patient
// reference ID, so all of a patient's records can later be shredded
// together). principal is granted access automatically. The plaintext key
// is returned once; the KMS stores only the wrapped form.
func (k *KMS) CreateDataKey(subject, principal string) (string, SymmetricKey, error) {
	dk, err := NewSymmetricKey()
	if err != nil {
		return "", nil, err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.nextID++
	id := fmt.Sprintf("key-%s-%d", k.tenant, k.nextID)
	wrapped, err := SealAEAD(k.aeads[k.masterGen], dk, []byte(id))
	if err != nil {
		return "", nil, fmt.Errorf("hckrypto: wrapping data key: %w", err)
	}
	k.keys[id] = &managedKey{id: id, subject: subject, gen: k.masterGen, wrapped: wrapped}
	k.acl[id] = map[string]bool{principal: true}
	return id, dk, nil
}

// Grant allows principal to unwrap the key. Grants are how the paper's
// "key management service ... ensures that authorized components,
// services and identities have access to the appropriate set of keys".
func (k *KMS) Grant(keyID, principal string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.keys[keyID]; !ok {
		return ErrKeyNotFound
	}
	k.acl[keyID][principal] = true
	return nil
}

// Revoke removes principal's access to the key.
func (k *KMS) Revoke(keyID, principal string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.keys[keyID]; !ok {
		return ErrKeyNotFound
	}
	delete(k.acl[keyID], principal)
	return nil
}

// UnwrapDataKey returns the plaintext data key if principal is authorized
// and the key has not been shredded.
func (k *KMS) UnwrapDataKey(keyID, principal string) (SymmetricKey, error) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	if k.shredded[keyID] {
		return nil, ErrKeyShredded
	}
	mk, ok := k.keys[keyID]
	if !ok {
		return nil, ErrKeyNotFound
	}
	if !k.acl[keyID][principal] {
		return nil, ErrAccessDenied
	}
	aead, ok := k.aeads[mk.gen]
	if !ok {
		return nil, ErrKeyShredded
	}
	dk, err := OpenAEAD(aead, mk.wrapped, []byte(keyID))
	if err != nil {
		return nil, fmt.Errorf("hckrypto: unwrapping data key: %w", err)
	}
	return dk, nil
}

// RotateMaster creates a new master-key generation and rewraps every live
// data key under it. Old generations are discarded, so a leaked old
// master is useless afterwards.
func (k *KMS) RotateMaster() error {
	newMaster, err := NewSymmetricKey()
	if err != nil {
		return err
	}
	newAEAD, err := NewAEAD(newMaster)
	if err != nil {
		return err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	newGen := k.masterGen + 1
	for id, mk := range k.keys {
		if k.shredded[id] {
			continue
		}
		old, ok := k.aeads[mk.gen]
		if !ok {
			continue
		}
		dk, err := OpenAEAD(old, mk.wrapped, []byte(id))
		if err != nil {
			return fmt.Errorf("hckrypto: rotate unwrap %s: %w", id, err)
		}
		rewrapped, err := SealAEAD(newAEAD, dk, []byte(id))
		if err != nil {
			return fmt.Errorf("hckrypto: rotate rewrap %s: %w", id, err)
		}
		zero(dk)
		mk.wrapped = rewrapped
		mk.gen = newGen
	}
	k.masters = map[uint32]SymmetricKey{newGen: newMaster}
	k.aeads = map[uint32]cipher.AEAD{newGen: newAEAD}
	k.masterGen = newGen
	return nil
}

// Shred destroys a single key. Ciphertexts under it become permanently
// unrecoverable (secure deletion, §IV-B1).
func (k *KMS) Shred(keyID string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	mk, ok := k.keys[keyID]
	if !ok {
		return ErrKeyNotFound
	}
	zero(mk.wrapped)
	mk.wrapped = nil
	k.shredded[keyID] = true
	return nil
}

// ShredSubject destroys every key belonging to subject, implementing
// "deletion of data relevant to a given patient from all parts of the
// system" for GDPR right-to-forget. It returns the number of keys shredded.
func (k *KMS) ShredSubject(subject string) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	n := 0
	for id, mk := range k.keys {
		if mk.subject == subject && !k.shredded[id] {
			zero(mk.wrapped)
			mk.wrapped = nil
			k.shredded[id] = true
			n++
		}
	}
	return n
}

// Shredded reports whether a key has been destroyed.
func (k *KMS) Shredded(keyID string) bool {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.shredded[keyID]
}

// KeyCount returns the number of live (non-shredded) keys.
func (k *KMS) KeyCount() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	n := 0
	for id := range k.keys {
		if !k.shredded[id] {
			n++
		}
	}
	return n
}

// NewUUID returns a random RFC-4122-shaped identifier. The ingestion
// pipeline labels records with "a random UUID or a pseudo-random number"
// before they are referenced on blockchain networks (§IV-B1).
func NewUUID() string {
	var b [16]byte
	if _, err := io.ReadFull(rand.Reader, b[:]); err != nil {
		// rand.Reader failing is unrecoverable for a crypto platform;
		// fall back to a counter-free zero UUID rather than panicking.
		return "00000000-0000-4000-8000-000000000000"
	}
	b[6] = (b[6] & 0x0f) | 0x40 // version 4
	b[8] = (b[8] & 0x3f) | 0x80 // variant 10
	return fmt.Sprintf("%x-%x-%x-%x-%x", b[0:4], b[4:6], b[6:8], b[8:10], b[10:16])
}

// RandomUint64 returns a cryptographically random 64-bit value.
func RandomUint64() uint64 {
	var b [8]byte
	if _, err := io.ReadFull(rand.Reader, b[:]); err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b[:])
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
