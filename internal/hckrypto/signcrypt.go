package hckrypto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Signcryption (§IV-B1): the paper allows digital signatures inside the
// encryption process "such as signcryption techniques" as an alternative
// to HMAC-based integrity. This implementation uses the standard
// sign-then-encrypt composition with sender binding: the sender signs
// (sender || recipient || plaintext), then the signature and plaintext
// are sealed together under the shared data key with the recipient
// identity as authenticated data. The construction provides
// confidentiality (AES-GCM), integrity (GCM tag), and origin
// non-repudiation (the embedded signature envelope names the sender and
// the intended recipient, preventing re-targeting; the signature scheme
// rides in the envelope's algorithm tag).

// ErrSigncrypt reports an invalid signcrypted payload.
var ErrSigncrypt = errors.New("hckrypto: signcryption verification failed")

// Signcrypt seals plaintext from the signer to recipient under the
// shared key. The embedded signature travels as an algorithm-tagged
// envelope, so sender identities can migrate schemes without breaking
// recipients.
func Signcrypt(signer Signer, senderID, recipientID string, key SymmetricKey, plaintext []byte) ([]byte, error) {
	sig, err := SignEnvelope(signer, signcryptPayload(senderID, recipientID, plaintext))
	if err != nil {
		return nil, fmt.Errorf("hckrypto: signcrypt sign: %w", err)
	}
	var inner bytes.Buffer
	writeLenPrefixedBuf(&inner, []byte(senderID))
	writeLenPrefixedBuf(&inner, sig)
	writeLenPrefixedBuf(&inner, plaintext)
	return EncryptGCM(key, inner.Bytes(), []byte(recipientID))
}

// Unsigncrypt opens a signcrypted payload addressed to recipientID,
// verifying the embedded signature under senderKey. It returns the
// plaintext and the claimed sender identity.
func Unsigncrypt(senderKey Verifier, recipientID string, key SymmetricKey, sealed []byte) (plaintext []byte, senderID string, err error) {
	inner, err := DecryptGCM(key, sealed, []byte(recipientID))
	if err != nil {
		return nil, "", fmt.Errorf("%w: %v", ErrSigncrypt, err)
	}
	r := bytes.NewReader(inner)
	sender, err := readLenPrefixed(r)
	if err != nil {
		return nil, "", ErrSigncrypt
	}
	sig, err := readLenPrefixed(r)
	if err != nil {
		return nil, "", ErrSigncrypt
	}
	pt, err := readLenPrefixed(r)
	if err != nil {
		return nil, "", ErrSigncrypt
	}
	if !VerifyEnvelope(senderKey, signcryptPayload(string(sender), recipientID, pt), sig) {
		return nil, "", ErrSigncrypt
	}
	return pt, string(sender), nil
}

func signcryptPayload(senderID, recipientID string, plaintext []byte) []byte {
	var b bytes.Buffer
	writeLenPrefixedBuf(&b, []byte("hckrypto:signcrypt"))
	writeLenPrefixedBuf(&b, []byte(senderID))
	writeLenPrefixedBuf(&b, []byte(recipientID))
	writeLenPrefixedBuf(&b, plaintext)
	return b.Bytes()
}

func writeLenPrefixedBuf(b *bytes.Buffer, data []byte) {
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(data)))
	b.Write(lenBuf[:])
	b.Write(data)
}

func readLenPrefixed(r *bytes.Reader) ([]byte, error) {
	var lenBuf [8]byte
	if _, err := r.Read(lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint64(lenBuf[:])
	if n > uint64(r.Len()) {
		return nil, errors.New("hckrypto: truncated field")
	}
	out := make([]byte, n)
	if n > 0 {
		if _, err := r.Read(out); err != nil {
			return nil, err
		}
	}
	return out, nil
}
