package hckrypto

import (
	"bytes"
	"errors"
	"testing"
)

// signcryptFixture returns sender key, shared key, and a sealed payload.
func signcryptFixture(t *testing.T) (*SigningKey, SymmetricKey, []byte) {
	t.Helper()
	signer, err := NewSigningKey(2048)
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t)
	sealed, err := Signcrypt(signer, "clinic-1", "platform", key, []byte("lab results bundle"))
	if err != nil {
		t.Fatal(err)
	}
	return signer, key, sealed
}

func TestSigncryptRoundTrip(t *testing.T) {
	signer, key, sealed := signcryptFixture(t)
	pt, sender, err := Unsigncrypt(signer.Public(), "platform", key, sealed)
	if err != nil {
		t.Fatalf("Unsigncrypt: %v", err)
	}
	if string(pt) != "lab results bundle" || sender != "clinic-1" {
		t.Errorf("pt=%q sender=%q", pt, sender)
	}
}

func TestSigncryptWrongRecipient(t *testing.T) {
	signer, key, sealed := signcryptFixture(t)
	// Re-targeting the ciphertext to another recipient fails (AAD).
	if _, _, err := Unsigncrypt(signer.Public(), "mallory", key, sealed); !errors.Is(err, ErrSigncrypt) {
		t.Errorf("got %v", err)
	}
}

func TestSigncryptWrongKey(t *testing.T) {
	signer, _, sealed := signcryptFixture(t)
	otherKey := mustKey(t)
	if _, _, err := Unsigncrypt(signer.Public(), "platform", otherKey, sealed); !errors.Is(err, ErrSigncrypt) {
		t.Errorf("got %v", err)
	}
}

func TestSigncryptForeignSigner(t *testing.T) {
	_, key, sealed := signcryptFixture(t)
	imposter, err := NewSigningKey(2048)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Unsigncrypt(imposter.Public(), "platform", key, sealed); !errors.Is(err, ErrSigncrypt) {
		t.Errorf("got %v", err)
	}
}

func TestSigncryptTamperDetected(t *testing.T) {
	signer, key, sealed := signcryptFixture(t)
	mut := append([]byte(nil), sealed...)
	mut[len(mut)/2] ^= 1
	if _, _, err := Unsigncrypt(signer.Public(), "platform", key, mut); !errors.Is(err, ErrSigncrypt) {
		t.Errorf("got %v", err)
	}
}

func TestSigncryptCiphertextHidesEverything(t *testing.T) {
	signer, err := NewSigningKey(2048)
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t)
	secret := []byte("THE-SECRET-BODY")
	sealed, err := Signcrypt(signer, "SENDER-NAME", "platform", key, secret)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, secret) || bytes.Contains(sealed, []byte("SENDER-NAME")) {
		t.Error("signcrypted payload leaks plaintext or sender identity")
	}
}

func TestSigncryptEmptyPlaintext(t *testing.T) {
	signer, err := NewSigningKey(2048)
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t)
	sealed, err := Signcrypt(signer, "a", "b", key, nil)
	if err != nil {
		t.Fatal(err)
	}
	pt, sender, err := Unsigncrypt(signer.Public(), "b", key, sealed)
	if err != nil || len(pt) != 0 || sender != "a" {
		t.Errorf("empty round trip: %q %q %v", pt, sender, err)
	}
}
