package hckrypto

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// conformanceSigners builds one signer per scheme, once: RSA keygen is
// ~100ms and every conformance case reuses the same identities.
var conformanceSigners = sync.OnceValues(func() (map[Scheme]Signer, error) {
	out := make(map[Scheme]Signer, 2)
	for _, scheme := range []Scheme{SchemeRSAPSS, SchemeEd25519} {
		s, err := NewSigner(scheme)
		if err != nil {
			return nil, err
		}
		out[scheme] = s
	}
	return out, nil
})

func signerFor(t testing.TB, scheme Scheme) Signer {
	t.Helper()
	signers, err := conformanceSigners()
	if err != nil {
		t.Fatalf("building signers: %v", err)
	}
	return signers[scheme]
}

// TestSignerConformance drives both Signer implementations through the
// identical contract: round trip, tamper rejection, wrong-key rejection,
// cross-algorithm rejection, payload-size edges, PEM round trip, and
// concurrent signing (the suite runs under -race in CI).
func TestSignerConformance(t *testing.T) {
	for _, scheme := range []Scheme{SchemeRSAPSS, SchemeEd25519} {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			s := signerFor(t, scheme)
			v := s.Verifier()
			if s.Scheme() != scheme || v.Scheme() != scheme {
				t.Fatalf("scheme mismatch: signer %q verifier %q want %q", s.Scheme(), v.Scheme(), scheme)
			}

			t.Run("round-trip", func(t *testing.T) {
				data := []byte("the platform weaves security into the data lifecycle")
				env, err := SignEnvelope(s, data)
				if err != nil {
					t.Fatal(err)
				}
				if !VerifyEnvelope(v, data, env) {
					t.Fatal("freshly signed envelope failed to verify")
				}
				gotScheme, raw, err := DecodeSignature(env)
				if err != nil {
					t.Fatal(err)
				}
				if gotScheme != scheme {
					t.Fatalf("decoded scheme = %q, want %q", gotScheme, scheme)
				}
				if !v.Verify(data, raw) {
					t.Fatal("decoded raw signature failed raw verify")
				}
			})

			t.Run("payload-edges", func(t *testing.T) {
				for _, payload := range [][]byte{nil, {}, bytes.Repeat([]byte{0xAB}, 1<<20)} {
					env, err := SignEnvelope(s, payload)
					if err != nil {
						t.Fatalf("signing %d-byte payload: %v", len(payload), err)
					}
					if !VerifyEnvelope(v, payload, env) {
						t.Fatalf("%d-byte payload failed to verify", len(payload))
					}
				}
			})

			t.Run("tamper-rejected", func(t *testing.T) {
				data := []byte("tamper target")
				env, err := SignEnvelope(s, data)
				if err != nil {
					t.Fatal(err)
				}
				// Flip one bit at every position — header bytes included: a
				// corrupted magic or tag must fail closed, never verify.
				for i := range env {
					mut := append([]byte(nil), env...)
					mut[i] ^= 0x01
					if VerifyEnvelope(v, data, mut) {
						t.Fatalf("envelope with byte %d flipped verified", i)
					}
				}
				if VerifyEnvelope(v, append([]byte("x"), data...), env) {
					t.Fatal("envelope verified over different data")
				}
				if VerifyEnvelope(v, data, env[:len(env)-1]) {
					t.Fatal("truncated envelope verified")
				}
				if VerifyEnvelope(v, data, nil) {
					t.Fatal("nil envelope verified")
				}
			})

			t.Run("wrong-key-rejected", func(t *testing.T) {
				data := []byte("wrong key")
				env, err := SignEnvelope(s, data)
				if err != nil {
					t.Fatal(err)
				}
				other, err := NewSigner(scheme)
				if err != nil {
					t.Fatal(err)
				}
				if VerifyEnvelope(other.Verifier(), data, env) {
					t.Fatal("envelope verified under a different key of the same scheme")
				}
			})

			t.Run("cross-algorithm-rejected", func(t *testing.T) {
				data := []byte("cross algorithm")
				env, err := SignEnvelope(s, data)
				if err != nil {
					t.Fatal(err)
				}
				for otherScheme, other := range mustSigners(t) {
					if otherScheme == scheme {
						continue
					}
					if VerifyEnvelope(other.Verifier(), data, env) {
						t.Fatalf("%s envelope verified under %s verifier", scheme, otherScheme)
					}
					// Relabeling the algorithm byte must also fail: the raw
					// signature bytes never validate under the other scheme.
					relabel := append([]byte(nil), env...)
					alg, err := algByte(otherScheme)
					if err != nil {
						t.Fatal(err)
					}
					relabel[4] = alg
					if VerifyEnvelope(other.Verifier(), data, relabel) {
						t.Fatalf("%s signature relabeled as %s verified", scheme, otherScheme)
					}
				}
			})

			t.Run("pem-round-trip", func(t *testing.T) {
				pemBytes, err := v.MarshalPEM()
				if err != nil {
					t.Fatal(err)
				}
				parsed, err := ParseVerifierPEM(pemBytes)
				if err != nil {
					t.Fatal(err)
				}
				if parsed.Scheme() != scheme {
					t.Fatalf("parsed scheme = %q, want %q", parsed.Scheme(), scheme)
				}
				if parsed.Fingerprint() == "" || parsed.Fingerprint() != v.Fingerprint() {
					t.Fatalf("fingerprint drifted across PEM round trip: %q vs %q",
						parsed.Fingerprint(), v.Fingerprint())
				}
				data := []byte("pem round trip")
				env, err := SignEnvelope(s, data)
				if err != nil {
					t.Fatal(err)
				}
				if !VerifyEnvelope(parsed, data, env) {
					t.Fatal("PEM round-tripped verifier rejected a valid envelope")
				}
			})

			t.Run("concurrent-sign", func(t *testing.T) {
				const goroutines = 8
				var wg sync.WaitGroup
				errs := make(chan error, goroutines)
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						data := []byte{byte(g), 'c', 'o', 'n', 'c'}
						for i := 0; i < 16; i++ {
							env, err := SignEnvelope(s, data)
							if err != nil {
								errs <- err
								return
							}
							if !VerifyEnvelope(v, data, env) {
								errs <- errors.New("concurrent envelope failed to verify")
								return
							}
						}
					}(g)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
			})
		})
	}
}

func mustSigners(t testing.TB) map[Scheme]Signer {
	t.Helper()
	signers, err := conformanceSigners()
	if err != nil {
		t.Fatal(err)
	}
	return signers
}

// TestLegacyUntaggedSignature pins the compatibility contract: raw
// RSA-PSS signatures from before crypto agility verify under an RSA
// verifier (the legacy fallback) and under no other scheme.
func TestLegacyUntaggedSignature(t *testing.T) {
	rsaSigner := signerFor(t, SchemeRSAPSS)
	data := []byte("stored artifact signed before the envelope existed")
	raw, err := rsaSigner.Sign(data)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyEnvelope(rsaSigner.Verifier(), data, raw) {
		t.Fatal("legacy untagged RSA signature rejected by RSA verifier")
	}
	ed := signerFor(t, SchemeEd25519)
	if VerifyEnvelope(ed.Verifier(), data, raw) {
		t.Fatal("legacy untagged RSA signature accepted by Ed25519 verifier")
	}
	scheme, decoded, err := DecodeSignature(raw)
	if err != nil || scheme != SchemeRSAPSS || !bytes.Equal(decoded, raw) {
		t.Fatalf("legacy decode = (%q, %d bytes, %v), want rsa-pss pass-through", scheme, len(decoded), err)
	}
}

// TestDecodeSignatureRejectsBadEnvelopes pins error (not panic, not
// legacy fallback) for tagged-but-malformed envelopes.
func TestDecodeSignatureRejectsBadEnvelopes(t *testing.T) {
	cases := map[string][]byte{
		"bad version":   {'H', 'C', 'S', 99, envAlgRSAPSS, 1, 2, 3},
		"bad algorithm": {'H', 'C', 'S', envVersion, 99, 1, 2, 3},
	}
	for name, env := range cases {
		if _, _, err := DecodeSignature(env); !errors.Is(err, ErrBadEnvelope) {
			t.Errorf("%s: err = %v, want ErrBadEnvelope", name, err)
		}
	}
	if _, err := EncodeSignature("no-such-scheme", []byte{1}); !errors.Is(err, ErrUnknownScheme) {
		t.Errorf("EncodeSignature with unknown scheme: err = %v, want ErrUnknownScheme", err)
	}
}

// TestParseScheme pins the user-facing scheme names.
func TestParseScheme(t *testing.T) {
	for in, want := range map[string]Scheme{
		"":        DefaultScheme,
		"ed25519": SchemeEd25519,
		"rsa":     SchemeRSAPSS,
		"rsa-pss": SchemeRSAPSS,
	} {
		got, err := ParseScheme(in)
		if err != nil || got != want {
			t.Errorf("ParseScheme(%q) = (%q, %v), want %q", in, got, err, want)
		}
	}
	if _, err := ParseScheme("dsa"); !errors.Is(err, ErrUnknownScheme) {
		t.Errorf("ParseScheme(dsa) err = %v, want ErrUnknownScheme", err)
	}
}

// TestEd25519VerifyZeroAlloc is the zero-allocation guard for the
// endorsement verify hot path: a tagged Ed25519 envelope must verify
// without a single heap allocation (VerifyEnvelope sub-slices the raw
// signature in place and ed25519.Verify itself is allocation-free).
func TestEd25519VerifyZeroAlloc(t *testing.T) {
	s := signerFor(t, SchemeEd25519)
	v := s.Verifier()
	data := []byte("zero-alloc verify hot path")
	env, err := SignEnvelope(s, data)
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if !VerifyEnvelope(v, data, env) {
			t.Fatal("envelope failed to verify")
		}
	}); allocs != 0 {
		t.Fatalf("Ed25519 VerifyEnvelope allocates %.1f allocs/op, want 0", allocs)
	}
}

// Benchmarks back the E22 experiment with per-op numbers; run with
// -bench -benchmem for the allocation columns cited in DESIGN.md.

func benchSign(b *testing.B, scheme Scheme) {
	s := signerFor(b, scheme)
	data := []byte("benchmark payload: one endorsement digest worth of bytes")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SignEnvelope(s, data); err != nil {
			b.Fatal(err)
		}
	}
}

func benchVerify(b *testing.B, scheme Scheme) {
	s := signerFor(b, scheme)
	v := s.Verifier()
	data := []byte("benchmark payload: one endorsement digest worth of bytes")
	env, err := SignEnvelope(s, data)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !VerifyEnvelope(v, data, env) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkSign(b *testing.B) {
	b.Run("rsa", func(b *testing.B) { benchSign(b, SchemeRSAPSS) })
	b.Run("ed25519", func(b *testing.B) { benchSign(b, SchemeEd25519) })
}

func BenchmarkVerify(b *testing.B) {
	b.Run("rsa", func(b *testing.B) { benchVerify(b, SchemeRSAPSS) })
	b.Run("ed25519", func(b *testing.B) { benchVerify(b, SchemeEd25519) })
}
