package hckrypto

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/pem"
	"errors"
	"fmt"
)

// SigningKey is an RSA private key used for image signing, attestation
// quotes, and the E4 signature-vs-HMAC comparison. Bulk data paths use
// symmetric primitives per the paper; asymmetric keys appear only where
// non-repudiation across parties is required (signed VM/container images,
// TPM quotes, client upload certificates).
type SigningKey struct {
	priv *rsa.PrivateKey
}

// VerifyKey is the public half of a SigningKey.
type VerifyKey struct {
	pub *rsa.PublicKey
}

// NewSigningKey generates an RSA key of the given bit size (2048 minimum
// enforced; tests may use the package-level test hooks to go smaller).
func NewSigningKey(bits int) (*SigningKey, error) {
	if bits < 2048 {
		return nil, errors.New("hckrypto: signing keys must be >= 2048 bits")
	}
	priv, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("hckrypto: generating rsa key: %w", err)
	}
	return &SigningKey{priv: priv}, nil
}

// Public returns the verification half of the key.
func (k *SigningKey) Public() *VerifyKey { return &VerifyKey{pub: &k.priv.PublicKey} }

// Scheme returns SchemeRSAPSS.
func (k *SigningKey) Scheme() Scheme { return SchemeRSAPSS }

// Verifier returns the verification half as the generic interface.
func (k *SigningKey) Verifier() Verifier { return k.Public() }

// Scheme returns SchemeRSAPSS.
func (v *VerifyKey) Scheme() Scheme { return SchemeRSAPSS }

// Sign produces an RSA-PSS signature over SHA-256(data).
func (k *SigningKey) Sign(data []byte) ([]byte, error) {
	digest := sha256.Sum256(data)
	sig, err := rsa.SignPSS(rand.Reader, k.priv, crypto.SHA256, digest[:], nil)
	if err != nil {
		return nil, fmt.Errorf("hckrypto: signing: %w", err)
	}
	return sig, nil
}

// Verify reports whether sig is a valid signature by the key's owner.
func (v *VerifyKey) Verify(data, sig []byte) bool {
	digest := sha256.Sum256(data)
	return rsa.VerifyPSS(v.pub, crypto.SHA256, digest[:], sig, nil) == nil
}

// Fingerprint returns a stable hex identifier for the public key.
func (v *VerifyKey) Fingerprint() string {
	der, err := x509.MarshalPKIXPublicKey(v.pub)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(der)
	return fmt.Sprintf("%x", sum[:8])
}

// MarshalPEM encodes the public key in PEM form for distribution to
// clients (the platform issues clients a "public certificate" at
// registration, §II-B).
func (v *VerifyKey) MarshalPEM() ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(v.pub)
	if err != nil {
		return nil, fmt.Errorf("hckrypto: marshal public key: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: "PUBLIC KEY", Bytes: der}), nil
}

// ParseVerifyKeyPEM decodes a PEM public key produced by MarshalPEM.
func ParseVerifyKeyPEM(data []byte) (*VerifyKey, error) {
	block, _ := pem.Decode(data)
	if block == nil {
		return nil, errors.New("hckrypto: no PEM block found")
	}
	pub, err := x509.ParsePKIXPublicKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("hckrypto: parse public key: %w", err)
	}
	rpub, ok := pub.(*rsa.PublicKey)
	if !ok {
		return nil, errors.New("hckrypto: not an RSA public key")
	}
	return &VerifyKey{pub: rpub}, nil
}

// EncryptOAEP encrypts a short message (such as a wrapped data key) to the
// holder of the key. Used by E3 to measure why the paper rejects public-key
// encryption for bulk data: RSA-OAEP can only seal messages shorter than
// the modulus and costs orders of magnitude more per byte than AES-GCM.
func (v *VerifyKey) EncryptOAEP(plaintext []byte) ([]byte, error) {
	out, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, v.pub, plaintext, nil)
	if err != nil {
		return nil, fmt.Errorf("hckrypto: rsa encrypt: %w", err)
	}
	return out, nil
}

// DecryptOAEP opens a message produced by EncryptOAEP.
func (k *SigningKey) DecryptOAEP(ciphertext []byte) ([]byte, error) {
	out, err := rsa.DecryptOAEP(sha256.New(), rand.Reader, k.priv, ciphertext, nil)
	if err != nil {
		return nil, fmt.Errorf("hckrypto: rsa decrypt: %w", err)
	}
	return out, nil
}

// MaxOAEPPayload returns the largest plaintext EncryptOAEP can seal.
func (v *VerifyKey) MaxOAEPPayload() int {
	return v.pub.Size() - 2*sha256.Size - 2
}
