package hckrypto

import (
	"crypto/ed25519"
	"crypto/rsa"
	"crypto/x509"
	"encoding/pem"
	"errors"
	"fmt"
)

// Crypto agility (ROADMAP item 2): every signing identity on the
// platform is a Signer behind an algorithm-tagged signature envelope, so
// the runtime algorithm can change without invalidating artifacts signed
// under the old one. Two schemes are implemented: RSA-PSS (the original
// platform algorithm, kept as the compatibility scheme for stored
// artifacts — image signatures and ledger endorsements written before
// the envelope existed are raw RSA-PSS bytes) and Ed25519 (the runtime
// default: ~30× cheaper to sign and allocation-free to verify, which is
// what lets endorsement keep up with the sharded ledger).

// Scheme identifies a signature algorithm.
type Scheme string

// Supported signature schemes.
const (
	SchemeRSAPSS  Scheme = "rsa-pss"
	SchemeEd25519 Scheme = "ed25519"
)

// DefaultScheme is the runtime default for newly minted signing
// identities (peers, TPM attestation keys). RSA-PSS remains the
// compatibility scheme: legacy untagged signatures are assumed to be
// RSA-PSS, and stored artifacts signed before crypto agility verify
// unchanged through VerifyEnvelope's legacy fallback.
const DefaultScheme = SchemeEd25519

// Signer produces signatures under one scheme. Sign returns the raw
// algorithm-native signature; use SignEnvelope to get the tagged form
// that mixed-algorithm verifiers accept.
type Signer interface {
	Sign(data []byte) ([]byte, error)
	Scheme() Scheme
	Verifier() Verifier
}

// Verifier checks raw signatures under one scheme. Use VerifyEnvelope
// for tagged envelopes (it enforces the algorithm tag before touching
// the signature bytes).
type Verifier interface {
	Verify(data, sig []byte) bool
	Scheme() Scheme
	Fingerprint() string
	MarshalPEM() ([]byte, error)
}

// Interface conformance for both implementations.
var (
	_ Signer   = (*SigningKey)(nil)
	_ Verifier = (*VerifyKey)(nil)
	_ Signer   = (*Ed25519Key)(nil)
	_ Verifier = (*Ed25519VerifyKey)(nil)
)

// ErrBadEnvelope reports a tagged signature envelope that is malformed:
// recognized magic but truncated, unknown version, or unknown algorithm.
var ErrBadEnvelope = errors.New("hckrypto: malformed signature envelope")

// ErrUnknownScheme reports an unrecognized scheme name.
var ErrUnknownScheme = errors.New("hckrypto: unknown signature scheme")

// ParseScheme maps a user-facing scheme name (config file, -sig-scheme
// flag) to a Scheme. The empty string selects DefaultScheme.
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "":
		return DefaultScheme, nil
	case "ed25519":
		return SchemeEd25519, nil
	case "rsa", "rsa-pss":
		return SchemeRSAPSS, nil
	}
	return "", fmt.Errorf("%w: %q (want ed25519 or rsa-pss)", ErrUnknownScheme, s)
}

// NewSigner mints a fresh signing identity under the given scheme. The
// empty scheme selects DefaultScheme.
func NewSigner(scheme Scheme) (Signer, error) {
	switch scheme {
	case "":
		scheme = DefaultScheme
	case SchemeEd25519, SchemeRSAPSS:
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownScheme, scheme)
	}
	if scheme == SchemeRSAPSS {
		return NewSigningKey(2048)
	}
	return NewEd25519Key()
}

// Signature envelope wire format: a 5-byte header — magic "HCS", a
// version byte, an algorithm byte — followed by the raw algorithm-native
// signature. Signatures produced before crypto agility are untagged raw
// RSA-PSS bytes; VerifyEnvelope treats anything without the magic as
// legacy RSA-PSS, which an RSA verifier still accepts (an RSA-2048-PSS
// signature is 256 high-entropy bytes, so a legacy signature starting
// with the 3-byte magic plus a valid version byte is a ~2^-32 accident —
// and even then it only shifts which bytes are handed to the RSA
// verifier, which rejects them).
const (
	envVersion    byte = 1
	envAlgRSAPSS  byte = 1
	envAlgEd25519 byte = 2
	envHeaderLen       = 5
)

// envelopeTagged reports whether env carries the envelope magic. Kept
// allocation-free: the verify hot path runs this on every endorsement.
func envelopeTagged(env []byte) bool {
	return len(env) >= envHeaderLen && env[0] == 'H' && env[1] == 'C' && env[2] == 'S'
}

func algByte(s Scheme) (byte, error) {
	switch s {
	case SchemeRSAPSS:
		return envAlgRSAPSS, nil
	case SchemeEd25519:
		return envAlgEd25519, nil
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownScheme, s)
}

// EncodeSignature wraps a raw signature in the tagged envelope.
func EncodeSignature(scheme Scheme, raw []byte) ([]byte, error) {
	alg, err := algByte(scheme)
	if err != nil {
		return nil, err
	}
	env := make([]byte, 0, envHeaderLen+len(raw))
	env = append(env, 'H', 'C', 'S', envVersion, alg)
	return append(env, raw...), nil
}

// DecodeSignature splits an envelope into its scheme and raw signature.
// Untagged input is returned as-is under SchemeRSAPSS (the legacy
// interpretation); a tagged envelope with an unknown version or
// algorithm is an error, never silently reinterpreted.
func DecodeSignature(env []byte) (Scheme, []byte, error) {
	if !envelopeTagged(env) {
		return SchemeRSAPSS, env, nil
	}
	if env[3] != envVersion {
		return "", nil, fmt.Errorf("%w: version %d", ErrBadEnvelope, env[3])
	}
	switch env[4] {
	case envAlgRSAPSS:
		return SchemeRSAPSS, env[envHeaderLen:], nil
	case envAlgEd25519:
		return SchemeEd25519, env[envHeaderLen:], nil
	}
	return "", nil, fmt.Errorf("%w: algorithm %d", ErrBadEnvelope, env[4])
}

// SignEnvelope signs data and wraps the signature in the tagged
// envelope. This is what every platform signing path (endorsement,
// attestation quotes, redactable seals, signcryption, image signing)
// emits.
func SignEnvelope(s Signer, data []byte) ([]byte, error) {
	raw, err := s.Sign(data)
	if err != nil {
		return nil, err
	}
	return EncodeSignature(s.Scheme(), raw)
}

// VerifyEnvelope checks a signature envelope against a verifier. The
// algorithm tag must match the verifier's scheme (cross-algorithm
// envelopes are rejected before any signature math); untagged input is
// accepted only by an RSA-PSS verifier, preserving every signature
// written before crypto agility. The function is allocation-free for
// tagged envelopes — it sub-slices the raw signature in place — which is
// what keeps the Ed25519 endorsement verify path at 0 allocs/op.
func VerifyEnvelope(v Verifier, data, env []byte) bool {
	if v == nil {
		return false
	}
	if envelopeTagged(env) {
		if env[3] != envVersion {
			return false
		}
		var scheme Scheme
		switch env[4] {
		case envAlgRSAPSS:
			scheme = SchemeRSAPSS
		case envAlgEd25519:
			scheme = SchemeEd25519
		default:
			return false
		}
		if scheme != v.Scheme() {
			return false
		}
		return v.Verify(data, env[envHeaderLen:])
	}
	// Legacy untagged signature: raw RSA-PSS from before crypto agility.
	return v.Scheme() == SchemeRSAPSS && v.Verify(data, env)
}

// ParseVerifierPEM decodes a PEM public key produced by any Verifier's
// MarshalPEM, returning the scheme-appropriate implementation.
func ParseVerifierPEM(data []byte) (Verifier, error) {
	block, _ := pem.Decode(data)
	if block == nil {
		return nil, errors.New("hckrypto: no PEM block found")
	}
	pub, err := x509.ParsePKIXPublicKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("hckrypto: parse public key: %w", err)
	}
	switch p := pub.(type) {
	case *rsa.PublicKey:
		return &VerifyKey{pub: p}, nil
	case ed25519.PublicKey:
		return &Ed25519VerifyKey{pub: p}, nil
	}
	return nil, fmt.Errorf("hckrypto: unsupported public key type %T", pub)
}
