// Package hckrypto provides the cryptographic substrate of the trusted
// health cloud platform: envelope encryption with AES-256-GCM (and an
// AES-CBC+HMAC mode, the paper's "encryption and integrity" option),
// HMAC-based integrity tags, RSA signatures (kept for comparison benches
// and image signing), and a single-tenant key-management system with
// key rotation and crypto-shredding for GDPR right-to-forget.
//
// The paper (§IV-B1) mandates shared-key encryption for bulk data because
// "public key encryption is too expensive to maintain the scalability of
// the system", and recommends HMACs over digital signatures for integrity.
// Both the recommended and the rejected primitives are implemented here so
// experiments E3 and E4 can quantify the gap.
package hckrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// Key sizes in bytes.
const (
	AESKeySize  = 32 // AES-256
	HMACKeySize = 32
)

// Common errors returned by this package.
var (
	ErrDecrypt      = errors.New("hckrypto: decryption failed")
	ErrBadKeySize   = errors.New("hckrypto: bad key size")
	ErrAuthFailed   = errors.New("hckrypto: authentication failed")
	ErrShortPayload = errors.New("hckrypto: payload too short")
)

// SymmetricKey is a shared secret used for AES and HMAC operations.
type SymmetricKey []byte

// NewSymmetricKey generates a fresh random 256-bit key.
func NewSymmetricKey() (SymmetricKey, error) {
	k := make([]byte, AESKeySize)
	if _, err := io.ReadFull(rand.Reader, k); err != nil {
		return nil, fmt.Errorf("hckrypto: generating key: %w", err)
	}
	return k, nil
}

// Fingerprint returns a short hex identifier for the key, safe to log.
func (k SymmetricKey) Fingerprint() string {
	sum := sha256.Sum256(k)
	return hex.EncodeToString(sum[:8])
}

// NewAEAD builds a reusable AES-256-GCM instance for key. Deriving the
// AES key schedule and GCM tables is the expensive, allocation-heavy
// part of EncryptGCM/DecryptGCM; hot paths that seal or open many
// payloads under one key (the KMS master key wrapping every data key)
// cache the AEAD and call SealAEAD/OpenAEAD instead. cipher.AEAD is
// safe for concurrent use.
func NewAEAD(key SymmetricKey) (cipher.AEAD, error) {
	if len(key) != AESKeySize {
		return nil, ErrBadKeySize
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("hckrypto: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("hckrypto: gcm: %w", err)
	}
	return gcm, nil
}

// SealAEAD seals plaintext under a cached AEAD with a fresh random
// nonce prepended, in a single output allocation.
func SealAEAD(gcm cipher.AEAD, plaintext, additional []byte) ([]byte, error) {
	n := gcm.NonceSize()
	out := make([]byte, n, n+len(plaintext)+gcm.Overhead())
	if _, err := io.ReadFull(rand.Reader, out); err != nil {
		return nil, fmt.Errorf("hckrypto: nonce: %w", err)
	}
	return gcm.Seal(out, out, plaintext, additional), nil
}

// OpenAEAD opens a ciphertext produced by SealAEAD (or EncryptGCM under
// the same key).
func OpenAEAD(gcm cipher.AEAD, ciphertext, additional []byte) ([]byte, error) {
	n := gcm.NonceSize()
	if len(ciphertext) < n {
		return nil, ErrShortPayload
	}
	pt, err := gcm.Open(nil, ciphertext[:n], ciphertext[n:], additional)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// EncryptGCM seals plaintext with AES-256-GCM. The nonce is prepended to
// the returned ciphertext. Additional data is authenticated but not
// encrypted; pass nil when there is none.
func EncryptGCM(key SymmetricKey, plaintext, additional []byte) ([]byte, error) {
	gcm, err := NewAEAD(key)
	if err != nil {
		return nil, err
	}
	return SealAEAD(gcm, plaintext, additional)
}

// DecryptGCM opens a ciphertext produced by EncryptGCM.
func DecryptGCM(key SymmetricKey, ciphertext, additional []byte) ([]byte, error) {
	gcm, err := NewAEAD(key)
	if err != nil {
		return nil, err
	}
	return OpenAEAD(gcm, ciphertext, additional)
}

// EncryptCBCHMAC implements the paper's alternative "AES CBC mode
// (encryption and integrity)" construction: AES-256-CBC with PKCS#7
// padding, then HMAC-SHA256 over IV||ciphertext (encrypt-then-MAC).
// The layout is IV || ciphertext || tag(32).
func EncryptCBCHMAC(encKey, macKey SymmetricKey, plaintext []byte) ([]byte, error) {
	if len(encKey) != AESKeySize || len(macKey) != HMACKeySize {
		return nil, ErrBadKeySize
	}
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, fmt.Errorf("hckrypto: cipher: %w", err)
	}
	padded := pkcs7Pad(plaintext, aes.BlockSize)
	out := make([]byte, aes.BlockSize+len(padded))
	iv := out[:aes.BlockSize]
	if _, err := io.ReadFull(rand.Reader, iv); err != nil {
		return nil, fmt.Errorf("hckrypto: iv: %w", err)
	}
	cipher.NewCBCEncrypter(block, iv).CryptBlocks(out[aes.BlockSize:], padded)
	mac := hmac.New(sha256.New, macKey)
	mac.Write(out)
	return mac.Sum(out), nil
}

// DecryptCBCHMAC opens a payload produced by EncryptCBCHMAC, verifying the
// HMAC tag before touching the ciphertext.
func DecryptCBCHMAC(encKey, macKey SymmetricKey, payload []byte) ([]byte, error) {
	if len(encKey) != AESKeySize || len(macKey) != HMACKeySize {
		return nil, ErrBadKeySize
	}
	if len(payload) < aes.BlockSize+sha256.Size+aes.BlockSize {
		return nil, ErrShortPayload
	}
	body, tag := payload[:len(payload)-sha256.Size], payload[len(payload)-sha256.Size:]
	mac := hmac.New(sha256.New, macKey)
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), tag) {
		return nil, ErrAuthFailed
	}
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, fmt.Errorf("hckrypto: cipher: %w", err)
	}
	iv, ct := body[:aes.BlockSize], body[aes.BlockSize:]
	if len(ct)%aes.BlockSize != 0 {
		return nil, ErrShortPayload
	}
	pt := make([]byte, len(ct))
	cipher.NewCBCDecrypter(block, iv).CryptBlocks(pt, ct)
	return pkcs7Unpad(pt, aes.BlockSize)
}

// MAC computes an HMAC-SHA256 tag over data. The paper recommends HMACs
// over digital signatures for data-integrity verification (§IV-B1).
func MAC(key SymmetricKey, data []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(data)
	return mac.Sum(nil)
}

// VerifyMAC reports whether tag is a valid HMAC-SHA256 tag for data.
func VerifyMAC(key SymmetricKey, data, tag []byte) bool {
	return hmac.Equal(MAC(key, data), tag)
}

// SaltedHash returns SHA-256(salt||data). The paper stores "a hash of the
// data ... computed using a perfectly secure hash function for stronger
// privacy" on the ledger; salting prevents dictionary attacks against
// low-entropy health records.
func SaltedHash(salt, data []byte) []byte {
	h := sha256.New()
	h.Write(salt)
	h.Write(data)
	return h.Sum(nil)
}

func pkcs7Pad(b []byte, size int) []byte {
	n := size - len(b)%size
	out := make([]byte, len(b)+n)
	copy(out, b)
	for i := len(b); i < len(out); i++ {
		out[i] = byte(n)
	}
	return out
}

func pkcs7Unpad(b []byte, size int) ([]byte, error) {
	if len(b) == 0 || len(b)%size != 0 {
		return nil, ErrShortPayload
	}
	n := int(b[len(b)-1])
	if n == 0 || n > size || n > len(b) {
		return nil, ErrDecrypt
	}
	for _, c := range b[len(b)-n:] {
		if int(c) != n {
			return nil, ErrDecrypt
		}
	}
	return b[:len(b)-n], nil
}
