package hckrypto

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"encoding/pem"
	"errors"
	"fmt"
)

// Ed25519Key is an Ed25519 signing identity — the platform's runtime
// default scheme. Signing is ~30× cheaper than RSA-2048-PSS and
// verification is allocation-free, which is what makes per-transaction
// endorsement affordable at ledger scale (experiment E22).
type Ed25519Key struct {
	priv ed25519.PrivateKey
}

// Ed25519VerifyKey is the public half of an Ed25519Key.
type Ed25519VerifyKey struct {
	pub ed25519.PublicKey
}

// NewEd25519Key generates a fresh Ed25519 signing key.
func NewEd25519Key() (*Ed25519Key, error) {
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("hckrypto: generating ed25519 key: %w", err)
	}
	return &Ed25519Key{priv: priv}, nil
}

// NewEd25519KeyFromSeed derives a key deterministically from a 32-byte
// seed (golden fixtures and fuzz corpora need reproducible identities).
func NewEd25519KeyFromSeed(seed []byte) (*Ed25519Key, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("hckrypto: ed25519 seed must be %d bytes", ed25519.SeedSize)
	}
	return &Ed25519Key{priv: ed25519.NewKeyFromSeed(seed)}, nil
}

// Scheme returns SchemeEd25519.
func (k *Ed25519Key) Scheme() Scheme { return SchemeEd25519 }

// Public returns the verification half of the key.
func (k *Ed25519Key) Public() *Ed25519VerifyKey {
	return &Ed25519VerifyKey{pub: k.priv.Public().(ed25519.PublicKey)}
}

// Verifier returns the verification half as the generic interface.
func (k *Ed25519Key) Verifier() Verifier { return k.Public() }

// Sign produces a raw Ed25519 signature over data (Ed25519 signs the
// message directly; no pre-hashing).
func (k *Ed25519Key) Sign(data []byte) ([]byte, error) {
	return ed25519.Sign(k.priv, data), nil
}

// Scheme returns SchemeEd25519.
func (v *Ed25519VerifyKey) Scheme() Scheme { return SchemeEd25519 }

// Verify reports whether sig is a valid Ed25519 signature by the key's
// owner. Allocation-free: this is the endorsement verify hot path, and
// the zero-allocs guard test pins it.
func (v *Ed25519VerifyKey) Verify(data, sig []byte) bool {
	return len(sig) == ed25519.SignatureSize && ed25519.Verify(v.pub, data, sig)
}

// Fingerprint returns a stable hex identifier for the public key, in the
// same PKIX-digest format the RSA keys use.
func (v *Ed25519VerifyKey) Fingerprint() string {
	der, err := x509.MarshalPKIXPublicKey(v.pub)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(der)
	return fmt.Sprintf("%x", sum[:8])
}

// MarshalPEM encodes the public key in PEM form for distribution
// (ParseVerifierPEM round-trips it).
func (v *Ed25519VerifyKey) MarshalPEM() ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(v.pub)
	if err != nil {
		return nil, fmt.Errorf("hckrypto: marshal public key: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: "PUBLIC KEY", Bytes: der}), nil
}

// ParseEd25519VerifyKeyPEM decodes a PEM Ed25519 public key.
func ParseEd25519VerifyKeyPEM(data []byte) (*Ed25519VerifyKey, error) {
	v, err := ParseVerifierPEM(data)
	if err != nil {
		return nil, err
	}
	ek, ok := v.(*Ed25519VerifyKey)
	if !ok {
		return nil, errors.New("hckrypto: not an Ed25519 public key")
	}
	return ek, nil
}
