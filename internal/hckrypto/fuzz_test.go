package hckrypto

import (
	"bytes"
	"testing"
)

// FuzzSignatureEnvelope throws arbitrary bytes at the envelope decode and
// verify paths and pins three properties:
//
//  1. DecodeSignature and VerifyEnvelope never panic, whatever the input.
//  2. A freshly signed envelope always verifies, and any single-byte
//     mutation of it never does (the fuzzer picks the position and mask).
//  3. An envelope never verifies under the other scheme's verifier.
//
// The Ed25519 key is rebuilt from a fixed seed so every fuzz worker and
// every corpus replay exercises identical envelopes.
func FuzzSignatureEnvelope(f *testing.F) {
	seed := bytes.Repeat([]byte{0x42}, 32)
	edKey, err := NewEd25519KeyFromSeed(seed)
	if err != nil {
		f.Fatal(err)
	}
	edV := edKey.Verifier()
	rsaKey, err := NewSigningKey(2048)
	if err != nil {
		f.Fatal(err)
	}
	rsaV := rsaKey.Verifier()

	genuine, err := SignEnvelope(edKey, []byte("healthcloud"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte("healthcloud"), genuine, 0, byte(1))
	f.Add([]byte(""), []byte{'H', 'C', 'S', envVersion, envAlgEd25519}, 3, byte(0xFF))
	f.Add([]byte("x"), []byte{'H', 'C', 'S', 99, 99, 1, 2, 3}, 4, byte(0x80))
	f.Add([]byte("legacy"), bytes.Repeat([]byte{0xA5}, 256), 128, byte(0x01))

	f.Fuzz(func(t *testing.T, data, env []byte, flipIdx int, mask byte) {
		// Property 1: arbitrary bytes never panic the decode/verify paths.
		scheme, raw, err := DecodeSignature(env)
		if err == nil && scheme != SchemeRSAPSS && scheme != SchemeEd25519 {
			t.Fatalf("DecodeSignature returned unknown scheme %q without error", scheme)
		}
		_ = raw
		VerifyEnvelope(edV, data, env)
		VerifyEnvelope(rsaV, data, env)

		// Property 2: sign/verify round trip, then single-byte mutation at a
		// fuzzer-chosen position must be rejected.
		signed, err := SignEnvelope(edKey, data)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyEnvelope(edV, data, signed) {
			t.Fatal("fresh envelope failed to verify")
		}
		if mask != 0 {
			mut := append([]byte(nil), signed...)
			mut[((flipIdx%len(mut))+len(mut))%len(mut)] ^= mask
			if bytes.Equal(mut, signed) {
				t.Fatal("mutation was a no-op despite non-zero mask")
			}
			if VerifyEnvelope(edV, data, mut) {
				t.Fatalf("mutated envelope verified (idx=%d mask=%#x)", flipIdx, mask)
			}
		}

		// Property 3: never accepted across schemes.
		if VerifyEnvelope(rsaV, data, signed) {
			t.Fatal("ed25519 envelope verified under rsa-pss verifier")
		}
	})
}
