package hckrypto

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func mustKey(t *testing.T) SymmetricKey {
	t.Helper()
	k, err := NewSymmetricKey()
	if err != nil {
		t.Fatalf("NewSymmetricKey: %v", err)
	}
	return k
}

func TestGCMRoundTrip(t *testing.T) {
	key := mustKey(t)
	tests := []struct {
		name string
		pt   []byte
		aad  []byte
	}{
		{name: "empty", pt: nil, aad: nil},
		{name: "small", pt: []byte("phi record"), aad: nil},
		{name: "with aad", pt: []byte("phi record"), aad: []byte("record-42")},
		{name: "binary", pt: []byte{0, 1, 2, 255, 254}, aad: []byte{9}},
		{name: "large", pt: bytes.Repeat([]byte("x"), 1<<16), aad: nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ct, err := EncryptGCM(key, tt.pt, tt.aad)
			if err != nil {
				t.Fatalf("EncryptGCM: %v", err)
			}
			got, err := DecryptGCM(key, ct, tt.aad)
			if err != nil {
				t.Fatalf("DecryptGCM: %v", err)
			}
			if !bytes.Equal(got, tt.pt) {
				t.Errorf("round trip mismatch: got %q want %q", got, tt.pt)
			}
		})
	}
}

func TestGCMWrongKeyFails(t *testing.T) {
	k1, k2 := mustKey(t), mustKey(t)
	ct, err := EncryptGCM(k1, []byte("secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecryptGCM(k2, ct, nil); err == nil {
		t.Error("decryption with wrong key should fail")
	}
}

func TestGCMWrongAADFails(t *testing.T) {
	k := mustKey(t)
	ct, err := EncryptGCM(k, []byte("secret"), []byte("aad-1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecryptGCM(k, ct, []byte("aad-2")); err == nil {
		t.Error("decryption with wrong additional data should fail")
	}
}

func TestGCMTamperDetected(t *testing.T) {
	k := mustKey(t)
	ct, err := EncryptGCM(k, []byte("secret message"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ct); i += 7 {
		mut := append([]byte(nil), ct...)
		mut[i] ^= 0x80
		if _, err := DecryptGCM(k, mut, nil); err == nil {
			t.Errorf("tampering at byte %d went undetected", i)
		}
	}
}

func TestGCMBadKeySize(t *testing.T) {
	if _, err := EncryptGCM(SymmetricKey("short"), []byte("x"), nil); err != ErrBadKeySize {
		t.Errorf("got %v, want ErrBadKeySize", err)
	}
	if _, err := DecryptGCM(SymmetricKey("short"), []byte("x"), nil); err != ErrBadKeySize {
		t.Errorf("got %v, want ErrBadKeySize", err)
	}
}

func TestGCMShortCiphertext(t *testing.T) {
	k := mustKey(t)
	if _, err := DecryptGCM(k, []byte{1, 2, 3}, nil); err != ErrShortPayload {
		t.Errorf("got %v, want ErrShortPayload", err)
	}
}

func TestCBCHMACRoundTrip(t *testing.T) {
	enc, mac := mustKey(t), mustKey(t)
	for _, pt := range [][]byte{nil, []byte("a"), []byte("exactly sixteen!"), bytes.Repeat([]byte("q"), 1000)} {
		ct, err := EncryptCBCHMAC(enc, mac, pt)
		if err != nil {
			t.Fatalf("EncryptCBCHMAC(%d bytes): %v", len(pt), err)
		}
		got, err := DecryptCBCHMAC(enc, mac, ct)
		if err != nil {
			t.Fatalf("DecryptCBCHMAC(%d bytes): %v", len(pt), err)
		}
		if !bytes.Equal(got, pt) {
			t.Errorf("round trip mismatch for %d-byte plaintext", len(pt))
		}
	}
}

func TestCBCHMACTamperDetected(t *testing.T) {
	enc, mac := mustKey(t), mustKey(t)
	ct, err := EncryptCBCHMAC(enc, mac, []byte("record body"))
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), ct...)
	mut[3] ^= 1
	if _, err := DecryptCBCHMAC(enc, mac, mut); err != ErrAuthFailed {
		t.Errorf("got %v, want ErrAuthFailed", err)
	}
}

func TestCBCHMACWrongMACKey(t *testing.T) {
	enc, mac, mac2 := mustKey(t), mustKey(t), mustKey(t)
	ct, err := EncryptCBCHMAC(enc, mac, []byte("record"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecryptCBCHMAC(enc, mac2, ct); err != ErrAuthFailed {
		t.Errorf("got %v, want ErrAuthFailed", err)
	}
}

func TestMACVerify(t *testing.T) {
	k := mustKey(t)
	tag := MAC(k, []byte("data"))
	if !VerifyMAC(k, []byte("data"), tag) {
		t.Error("valid MAC rejected")
	}
	if VerifyMAC(k, []byte("data2"), tag) {
		t.Error("MAC over different data accepted")
	}
	k2 := mustKey(t)
	if VerifyMAC(k2, []byte("data"), tag) {
		t.Error("MAC with different key accepted")
	}
}

func TestSaltedHashDiffersBySalt(t *testing.T) {
	h1 := SaltedHash([]byte("salt1"), []byte("record"))
	h2 := SaltedHash([]byte("salt2"), []byte("record"))
	if bytes.Equal(h1, h2) {
		t.Error("different salts produced identical hashes")
	}
	h3 := SaltedHash([]byte("salt1"), []byte("record"))
	if !bytes.Equal(h1, h3) {
		t.Error("salted hash not deterministic")
	}
}

func TestKeyFingerprintStable(t *testing.T) {
	k := mustKey(t)
	if k.Fingerprint() != k.Fingerprint() {
		t.Error("fingerprint not stable")
	}
	if len(k.Fingerprint()) != 16 {
		t.Errorf("fingerprint length = %d, want 16", len(k.Fingerprint()))
	}
}

// Property: GCM round trip is identity for arbitrary plaintexts and AADs.
func TestQuickGCMRoundTrip(t *testing.T) {
	key := mustKey(t)
	f := func(pt, aad []byte) bool {
		ct, err := EncryptGCM(key, pt, aad)
		if err != nil {
			return false
		}
		got, err := DecryptGCM(key, ct, aad)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: CBC+HMAC round trip is identity and ciphertext differs from plaintext.
func TestQuickCBCHMACRoundTrip(t *testing.T) {
	enc, mac := mustKey(t), mustKey(t)
	f := func(pt []byte) bool {
		ct, err := EncryptCBCHMAC(enc, mac, pt)
		if err != nil {
			return false
		}
		got, err := DecryptCBCHMAC(enc, mac, ct)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: pkcs7 pad/unpad is identity and padded length is a block multiple.
func TestQuickPKCS7(t *testing.T) {
	f := func(b []byte) bool {
		p := pkcs7Pad(b, 16)
		if len(p)%16 != 0 || len(p) <= len(b) {
			return false
		}
		u, err := pkcs7Unpad(p, 16)
		return err == nil && bytes.Equal(u, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPKCS7RejectsCorruptPadding(t *testing.T) {
	if _, err := pkcs7Unpad(nil, 16); err == nil {
		t.Error("empty input should be rejected")
	}
	bad := bytes.Repeat([]byte{16}, 16)
	bad[15] = 0
	if _, err := pkcs7Unpad(bad, 16); err == nil {
		t.Error("zero padding byte should be rejected")
	}
	bad[15] = 17
	if _, err := pkcs7Unpad(bad, 16); err == nil {
		t.Error("oversized padding byte should be rejected")
	}
	mixed := bytes.Repeat([]byte{4}, 16)
	mixed[13] = 3
	if _, err := pkcs7Unpad(mixed, 16); err == nil {
		t.Error("inconsistent padding should be rejected")
	}
}

func TestNewUUIDShape(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		u := NewUUID()
		if len(u) != 36 || strings.Count(u, "-") != 4 {
			t.Fatalf("malformed UUID %q", u)
		}
		if u[14] != '4' {
			t.Fatalf("UUID %q not version 4", u)
		}
		if seen[u] {
			t.Fatalf("duplicate UUID %q", u)
		}
		seen[u] = true
	}
}
