package blockchain

import (
	"fmt"
	"testing"

	"healthcloud/internal/hckrypto"
)

// BenchmarkEndorseGroup measures the batched endorsement hot path — one
// group digest over 16 transactions plus one signature — under each
// signature scheme. Together with BenchmarkSign/BenchmarkVerify in
// internal/hckrypto this is the per-op evidence behind experiment E22.
func BenchmarkEndorseGroup(b *testing.B) {
	for _, scheme := range []hckrypto.Scheme{hckrypto.SchemeRSAPSS, hckrypto.SchemeEd25519} {
		name := "rsa"
		if scheme == hckrypto.SchemeEd25519 {
			name = "ed25519"
		}
		b.Run(name, func(b *testing.B) {
			peer, err := NewPeerWithScheme("bench", scheme, nil)
			if err != nil {
				b.Fatal(err)
			}
			txs := make([]Transaction, 16)
			for i := range txs {
				txs[i] = NewTransaction(EventDataReceipt, "bench",
					fmt.Sprintf("h-%d", i), nil, map[string]string{"k": "v"})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := peer.EndorseGroup(txs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
