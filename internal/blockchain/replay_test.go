package blockchain

import (
	"testing"
	"time"
)

// goldenChain builds the same three-block chain from fixed transaction
// fields — no wall clock, no randomness — so its hashes are identical
// on every run and platform.
func goldenChain(t *testing.T) *Ledger {
	t.Helper()
	led := NewLedger()
	fixed := time.Unix(0, 1700000000000000000).UTC()
	blocks := [][]Transaction{
		{
			{ID: "tx-1", Type: EventDataReceipt, Creator: "ingest", Handle: "ref-a",
				DataHash: []byte{0x01, 0x02}, Timestamp: fixed},
			{ID: "tx-2", Type: EventAnonymization, Creator: "ingest", Handle: "ref-a",
				Timestamp: fixed.Add(time.Second)},
		},
		{
			{ID: "tx-3", Type: EventDataReceipt, Creator: "ingest", Handle: "ref-b",
				Meta: map[string]string{"group": "study"}, Timestamp: fixed.Add(2 * time.Second)},
		},
		{
			{ID: "tx-4", Type: EventSecureDeletion, Creator: "storage-svc", Handle: "ref-a",
				Timestamp: fixed.Add(3 * time.Second)},
		},
	}
	for _, txs := range blocks {
		if _, err := led.AppendBlock(txs); err != nil {
			t.Fatalf("building golden chain: %v", err)
		}
	}
	return led
}

// goldenStateHash pins the world-state digest of goldenChain. If this
// test starts failing, the replay state transition changed — which
// silently invalidates every ledger WAL already on disk. Bump this
// constant only with a migration story.
const goldenStateHash = "7fdc65f6197da01462e4036997dc4d093aa1152582c99405e58acabdd7506d33"

// TestLedgerReplayDeterminismGolden audits replay determinism: the
// same transactions must always produce the same chain and world
// state, committed live or restored from a WAL. Block hashes cover
// every transaction digest, StateHash covers sorted world state plus
// the tip, and both must match a pinned constant across runs.
func TestLedgerReplayDeterminismGolden(t *testing.T) {
	led := goldenChain(t)
	if got := led.StateHash(); got != goldenStateHash {
		t.Errorf("golden chain state hash drifted:\n  got  %s\n  want %s", got, goldenStateHash)
	}
	// Building the identical chain again must reproduce the hash —
	// nothing ambient (time, map order, randomness) may leak in.
	if got := goldenChain(t).StateHash(); got != goldenStateHash {
		t.Errorf("second build diverged: %s", got)
	}

	// The restore path must be indistinguishable from live commits.
	blocks := make([]Block, led.Height())
	for i := range blocks {
		b, err := led.Block(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		blocks[i] = b
	}
	restored := NewLedger()
	if err := restored.Restore(blocks); err != nil {
		t.Fatalf("restoring golden chain: %v", err)
	}
	if got := restored.StateHash(); got != goldenStateHash {
		t.Errorf("restored state hash diverged:\n  got  %s\n  want %s", got, goldenStateHash)
	}
	if err := restored.VerifyChain(); err != nil {
		t.Errorf("restored chain fails verification: %v", err)
	}
	if got, want := restored.TxCount(), led.TxCount(); got != want {
		t.Errorf("restored %d txs, want %d", got, want)
	}
	if state, ok := restored.HandleState("ref-a"); !ok || state != "secure-deletion@block2" {
		t.Errorf("ref-a state after replay = %q, %v", state, ok)
	}
}
