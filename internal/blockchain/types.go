// Package blockchain implements the permissioned ledger networks of §IV:
// provenance, malware, privacy, and identity blockchains "such as
// Hyperledger". The transaction lifecycle follows the Fabric model the
// paper assumes — endorse, order, validate, commit — with ordering
// provided by the Raft cluster in internal/consensus.
//
// PHI never goes on-chain: per §IV-B1 "it is essential not to store the
// PHI data on the full replicated de-centralized ledger". Transactions
// carry only a handle (reference) to the encrypted off-chain record, a
// salted hash of the data, and event metadata.
package blockchain

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"sort"
	"time"
)

// EventType enumerates the ledger events §IV-B1 lists: "data receipt,
// data retrieval, data anonymization and such other events".
type EventType string

// Ledger event types.
const (
	EventDataReceipt      EventType = "data-receipt"
	EventDataRetrieval    EventType = "data-retrieval"
	EventAnonymization    EventType = "anonymization"
	EventConsentGranted   EventType = "consent-granted"
	EventConsentRevoked   EventType = "consent-revoked"
	EventMalwareReport    EventType = "malware-report"
	EventPrivacyLevel     EventType = "privacy-level"
	EventIdentityRegister EventType = "identity-register"
	EventIdentityRevoke   EventType = "identity-revoke"
	EventWorkloadAttest   EventType = "workload-attest"
	EventSecureDeletion   EventType = "secure-deletion"
	EventExport           EventType = "export"
)

// Transaction is one ledger record. Handle points at the off-chain
// encrypted record; DataHash is a salted hash binding the record's
// content without revealing it.
type Transaction struct {
	ID           string            `json:"id"`
	Type         EventType         `json:"type"`
	Creator      string            `json:"creator"`
	Handle       string            `json:"handle,omitempty"`
	DataHash     []byte            `json:"data_hash,omitempty"`
	Meta         map[string]string `json:"meta,omitempty"`
	Timestamp    time.Time         `json:"timestamp"`
	Endorsements []Endorsement     `json:"endorsements,omitempty"`
}

// Endorsement is a peer's signature over a transaction digest.
type Endorsement struct {
	PeerID    string `json:"peer_id"`
	Signature []byte `json:"signature"`
}

// Digest returns the canonical hash endorsers sign: every field except
// the endorsements themselves, deterministically serialized.
func (tx *Transaction) Digest() []byte {
	h := sha256.New()
	tx.writeDigest(h)
	return h.Sum(nil)
}

// writeDigest streams the canonical digest serialization into h. The
// byte layout is load-bearing: stored chains hash-verify against it on
// replay, so it must never change. Batch paths (GroupDigest, block
// hashing) call this with a reused hasher instead of allocating a fresh
// sha256 state and 32-byte sum per transaction.
func (tx *Transaction) writeDigest(h hash.Hash) {
	var lenBuf [8]byte
	write := func(b []byte) {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(b)))
		h.Write(lenBuf[:])
		h.Write(b)
	}
	write([]byte(tx.ID))
	write([]byte(tx.Type))
	write([]byte(tx.Creator))
	write([]byte(tx.Handle))
	write(tx.DataHash)
	switch len(tx.Meta) {
	case 0:
	case 1:
		// A single entry needs no sort — skip the keys-slice allocation
		// (most ledger transactions carry zero or one metadata pair).
		for k, v := range tx.Meta {
			write([]byte(k))
			write([]byte(v))
		}
	default:
		keys := make([]string, 0, len(tx.Meta))
		for k := range tx.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			write([]byte(k))
			write([]byte(tx.Meta[k]))
		}
	}
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(tx.Timestamp.UnixNano()))
	write(ts[:])
}

// writeTxDigests writes each transaction's digest into h, reusing one
// inner hasher and one stack sum buffer across the whole batch.
func writeTxDigests(h hash.Hash, txs []Transaction) {
	inner := sha256.New()
	var sum [sha256.Size]byte
	for i := range txs {
		inner.Reset()
		txs[i].writeDigest(inner)
		h.Write(inner.Sum(sum[:0]))
	}
}

// Block is a batch of validated transactions chained by hash.
type Block struct {
	Number   uint64        `json:"number"`
	PrevHash []byte        `json:"prev_hash"`
	Txs      []Transaction `json:"txs"`
	Hash     []byte        `json:"hash"`
}

// computeHash derives the block hash from number, previous hash, and
// every transaction digest.
func (b *Block) computeHash() []byte {
	h := sha256.New()
	var num [8]byte
	binary.BigEndian.PutUint64(num[:], b.Number)
	h.Write(num[:])
	h.Write(b.PrevHash)
	writeTxDigests(h, b.Txs)
	return h.Sum(nil)
}

// batch is the unit submitted to the ordering service. Group carries
// batch-level endorsements (signatures over GroupDigest of Txs) when the
// batch was endorsed as a unit by the group-commit path; it is empty for
// per-transaction endorsement, keeping the wire format backward
// compatible.
type batch struct {
	Txs   []Transaction `json:"txs"`
	Group []Endorsement `json:"group,omitempty"`
}

// GroupDigest is the canonical hash peers sign when endorsing a batch as
// a unit: a domain-separated hash over every transaction digest in
// order. Binding the order means a reordered or substituted batch fails
// verification.
func GroupDigest(txs []Transaction) []byte {
	h := sha256.New()
	h.Write([]byte("blockchain:group-endorsement:v1"))
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(txs)))
	h.Write(n[:])
	writeTxDigests(h, txs)
	return h.Sum(nil)
}

func encodeBatch(txs []Transaction) ([]byte, error) {
	return encodeEnvelope(txs, nil)
}

func encodeEnvelope(txs []Transaction, group []Endorsement) ([]byte, error) {
	data, err := json.Marshal(batch{Txs: txs, Group: group})
	if err != nil {
		return nil, fmt.Errorf("blockchain: encoding batch: %w", err)
	}
	return data, nil
}

func decodeBatch(data []byte) ([]Transaction, []Endorsement, error) {
	var b batch
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, nil, fmt.Errorf("blockchain: decoding batch: %w", err)
	}
	return b.Txs, b.Group, nil
}

// Errors returned by this package.
var (
	ErrNotEndorsed    = errors.New("blockchain: endorsement policy not satisfied")
	ErrUnknownPeer    = errors.New("blockchain: unknown peer")
	ErrBadEndorsement = errors.New("blockchain: invalid endorsement signature")
	ErrChainBroken    = errors.New("blockchain: hash chain broken")
	ErrTxRejected     = errors.New("blockchain: transaction rejected by endorser")
)
