package blockchain

import (
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"healthcloud/internal/telemetry"
)

// ErrBatcherClosed is returned by Submit/SubmitCtx after Close.
var ErrBatcherClosed = errors.New("blockchain: batcher closed")

// BatcherConfig tunes the group-commit window.
type BatcherConfig struct {
	// MaxBatch is the largest group committed at once (default 64). An
	// enqueue that fills the window triggers an immediate commit.
	MaxBatch int
	// MaxDelay is how long the committer waits for stragglers after the
	// first enqueue of a window (default 5ms). Zero keeps a tiny default
	// rather than busy-committing singletons; use a negative value to
	// commit immediately without a window (tests).
	MaxDelay time.Duration
	// Registry/Tracer instrument the batcher (either may be nil).
	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 5 * time.Millisecond
	}
	return c
}

// BatchSizeBuckets are the bucket bounds of ledger_batch_size: batch
// sizes recorded as whole "seconds" so they fit the fixed-bucket latency
// histogram (a size-12 batch lands in the ≤16 bucket).
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// BatcherStats is a point-in-time copy of the batcher's commit counters.
type BatcherStats struct {
	Commits   uint64 // group commits issued (including singletons)
	Txs       uint64 // transactions acknowledged through the batcher
	Fallbacks uint64 // group commits that fell back to per-tx submission
}

// MeanBatchSize is transactions per commit (0 before the first commit).
func (s BatcherStats) MeanBatchSize() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.Txs) / float64(s.Commits)
}

// pendingTx is one waiter in the group-commit queue.
type pendingTx struct {
	tx      Transaction
	timeout time.Duration
	parent  telemetry.SpanContext
	size    int        // group size, set before done is signalled
	done    chan error // buffered(1); receives exactly one result
}

// Batcher is a group-commit ledger writer: concurrent producers enqueue
// single transactions, a committer goroutine coalesces them under a
// size/time window into one SubmitGroupCtx call, and the result is
// fanned back to every waiter. Per-caller semantics are unchanged — each
// Submit returns its transaction's own success or failure — while
// endorsement and ordering cost is amortized across the group
// (experiment E17). It satisfies the same contract as Network.Submit /
// SubmitCtx, so ingest can use either interchangeably.
type Batcher struct {
	net *Network
	cfg BatcherConfig

	mu     sync.Mutex
	queue  []*pendingTx
	closed bool

	kick   chan struct{} // non-blocking doorbell from enqueuers
	stopCh chan struct{}
	doneCh chan struct{}

	commits, txs, fallbacks atomic.Uint64

	met *batcherMetrics
}

type batcherMetrics struct {
	depth     *telemetry.Gauge
	batchSize *telemetry.Histogram
	commitLat *telemetry.Histogram
	commits   *telemetry.Counter
	txs       *telemetry.Counter
	fallbacks *telemetry.Counter
}

func newBatcherMetrics(reg *telemetry.Registry, network string) *batcherMetrics {
	if reg == nil {
		return nil
	}
	label := "{network=" + strconv.Quote(network) + "}"
	return &batcherMetrics{
		depth:     reg.Gauge("ledger_batch_queue_depth" + label),
		batchSize: reg.HistogramWithBuckets("ledger_batch_size"+label, BatchSizeBuckets),
		commitLat: reg.Histogram("ledger_group_commit_seconds" + label),
		commits:   reg.Counter("ledger_group_commits_total" + label),
		txs:       reg.Counter("ledger_group_txs_total" + label),
		fallbacks: reg.Counter("ledger_group_fallbacks_total" + label),
	}
}

// NewBatcher starts a group-commit writer in front of net. Close it
// before closing the network.
func NewBatcher(net *Network, cfg BatcherConfig) *Batcher {
	b := &Batcher{
		net:    net,
		cfg:    cfg.withDefaults(),
		kick:   make(chan struct{}, 1),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
		met:    newBatcherMetrics(cfg.Registry, net.Name()),
	}
	go b.run()
	return b
}

// Submit enqueues one transaction and blocks until its group commits
// (ingest.Ledger).
func (b *Batcher) Submit(tx Transaction, timeout time.Duration) error {
	return b.SubmitCtx(tx, timeout, telemetry.SpanContext{})
}

// SubmitCtx is Submit continuing a caller's trace: the wait for the
// group commit appears as a ledger.batch-wait span under parent
// (ingest.TracedLedger).
func (b *Batcher) SubmitCtx(tx Transaction, timeout time.Duration, parent telemetry.SpanContext) error {
	p := &pendingTx{tx: tx, timeout: timeout, parent: parent, done: make(chan error, 1)}
	sp := b.tracer().StartSpan("ledger.batch-wait", parent)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		sp.SetAttr("error", ErrBatcherClosed.Error())
		sp.End()
		return ErrBatcherClosed
	}
	b.queue = append(b.queue, p)
	depth := len(b.queue)
	b.mu.Unlock()
	if b.met != nil {
		b.met.depth.Set(int64(depth))
	}
	select {
	case b.kick <- struct{}{}:
	default:
	}
	err := <-p.done
	sp.SetAttr("group", strconv.Itoa(p.size))
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	return err
}

func (b *Batcher) tracer() *telemetry.Tracer { return b.cfg.Tracer }

// QueueDepth reports how many transactions are waiting for a commit.
func (b *Batcher) QueueDepth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// Stats returns the batcher's cumulative commit counters.
func (b *Batcher) Stats() BatcherStats {
	return BatcherStats{
		Commits:   b.commits.Load(),
		Txs:       b.txs.Load(),
		Fallbacks: b.fallbacks.Load(),
	}
}

// Flush synchronously commits everything queued at the time of the call,
// fanning results back to the waiting producers. Safe to call
// concurrently with the committer: take removes entries atomically, so
// no transaction is ever committed twice by racing flushers.
func (b *Batcher) Flush() {
	for {
		batch := b.take()
		if len(batch) == 0 {
			return
		}
		b.commit(batch)
	}
}

// Close drains the queue (every accepted transaction is committed and
// its waiter signalled) and stops the committer. Subsequent submits
// return ErrBatcherClosed. Idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.doneCh
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stopCh)
	<-b.doneCh
}

// run is the committer loop: sleep until kicked, give stragglers the
// MaxDelay window, then commit in MaxBatch-sized groups.
func (b *Batcher) run() {
	defer close(b.doneCh)
	for {
		select {
		case <-b.stopCh:
			// closed was set before stopCh closed, and every accepted
			// enqueue appended under the same mutex — this final drain
			// provably sees all of them.
			b.Flush()
			return
		case <-b.kick:
		}
		b.window()
		b.Flush()
	}
}

// window waits for the batch to fill, the MaxDelay to expire, or stop.
func (b *Batcher) window() {
	if b.cfg.MaxDelay < 0 || b.QueueDepth() >= b.cfg.MaxBatch {
		return
	}
	timer := time.NewTimer(b.cfg.MaxDelay)
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
			return
		case <-b.stopCh:
			return
		case <-b.kick:
			if b.QueueDepth() >= b.cfg.MaxBatch {
				return
			}
		}
	}
}

// take removes up to MaxBatch waiters from the queue.
func (b *Batcher) take() []*pendingTx {
	b.mu.Lock()
	n := len(b.queue)
	if n > b.cfg.MaxBatch {
		n = b.cfg.MaxBatch
	}
	batch := b.queue[:n:n]
	if n == len(b.queue) {
		// Full drain (the common case): hand the backing array to the
		// batch and keep the empty tail. Later enqueues append at
		// indices >= n of a capacity-clipped slice, so they can never
		// alias the batch being committed.
		b.queue = b.queue[n:]
	} else {
		b.queue = append([]*pendingTx(nil), b.queue[n:]...)
	}
	depth := len(b.queue)
	b.mu.Unlock()
	if b.met != nil {
		b.met.depth.Set(int64(depth))
	}
	return batch
}

// commit submits one group and fans the result back to each waiter. A
// failed group falls back to individual submission so one poison
// transaction cannot fail its neighbors; the ledger's append-time
// dedup by transaction ID keeps this exactly-once even if the group
// commit landed after its timeout.
func (b *Batcher) commit(batch []*pendingTx) {
	txs := make([]Transaction, len(batch))
	var timeout time.Duration
	for i, p := range batch {
		txs[i] = p.tx
		if p.timeout > timeout {
			timeout = p.timeout
		}
	}
	sp := b.tracer().StartSpan("ledger.group-commit", telemetry.SpanContext{})
	sc := sp.Context()
	sp.SetAttr("network", b.net.Name())
	sp.SetAttr("batch", strconv.Itoa(len(batch)))
	start := time.Now()
	if len(batch) == 1 {
		batch[0].size = 1
		batch[0].done <- b.net.SubmitCtx(txs[0], timeout, batch[0].parent)
	} else if err := b.net.SubmitGroupCtx(txs, timeout, sc); err == nil {
		for _, p := range batch {
			p.size = len(batch)
			p.done <- nil
		}
	} else {
		sp.SetAttr("fallback", err.Error())
		b.fallbacks.Add(1)
		if b.met != nil {
			b.met.fallbacks.Inc()
		}
		for _, p := range batch {
			p.size = len(batch)
			p.done <- b.net.SubmitCtx(p.tx, p.timeout, p.parent)
		}
	}
	b.commits.Add(1)
	b.txs.Add(uint64(len(batch)))
	if b.met != nil {
		b.met.commits.Inc()
		b.met.txs.Add(uint64(len(batch)))
		b.met.batchSize.Observe(time.Duration(len(batch)) * time.Second)
		b.met.commitLat.ObserveTrace(time.Since(start), sc.TraceID)
	}
	sp.End()
	// The group-commit span is its own root trace; it is complete here.
	b.tracer().FinishTrace(sc.TraceID)
}
