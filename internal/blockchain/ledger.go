package blockchain

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Ledger is an append-only chain of blocks plus the world state derived
// from them. Each peer holds its own instance, built independently from
// the ordered transaction stream, so divergence is detectable by
// comparing chain heads.
type Ledger struct {
	mu     sync.RWMutex
	wal    BlockWAL          // nil = in-memory only
	blocks []Block           // retained blocks, numbered [base, base+len)
	state  map[string]string // world state: handle -> latest event summary
	byID   map[string]bool   // committed tx ids, for at-least-once dedup
	byType map[EventType][]int

	// base/baseHash are non-zero only on a ledger restored from a
	// world-state snapshot (RestoreSnapshot): blocks [0, base) were
	// folded into the snapshot and are not retained; baseHash is the
	// hash of block base-1, the linkage anchor for the first retained
	// block. snapEvery > 0 offers a snapshot to the WAL every K blocks.
	base      uint64
	baseHash  []byte
	snapEvery uint64
}

// BlockWAL persists committed blocks write-ahead: AppendBlock hands
// every new block to the WAL before the world state applies it, and a
// WAL error fails the commit (the submitter sees a transient failure
// and retries). Because each peer builds the same chain from the same
// ordered stream, one WAL is safely shared across all peers of a
// network — the implementation deduplicates by block number + hash and
// turns a same-number/different-hash append into a divergence error.
// internal/durable provides the file-backed implementation.
type BlockWAL interface {
	Append(b Block) error
}

// NewLedger creates an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		state:  make(map[string]string),
		byID:   make(map[string]bool),
		byType: make(map[EventType][]int),
	}
}

// AppendBlock validates chain linkage and appends. Transactions already
// committed (by ID) are dropped silently: the ordering layer is
// at-least-once, the ledger is exactly-once.
func (l *Ledger) AppendBlock(txs []Transaction) (*Block, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fresh := make([]Transaction, 0, len(txs))
	for _, tx := range txs {
		if !l.byID[tx.ID] {
			fresh = append(fresh, tx)
		}
	}
	if len(fresh) == 0 {
		return nil, nil
	}
	prev := l.baseHash
	if n := len(l.blocks); n > 0 {
		prev = l.blocks[n-1].Hash
	}
	b := Block{Number: l.base + uint64(len(l.blocks)), PrevHash: prev, Txs: fresh}
	b.Hash = b.computeHash()
	if l.wal != nil {
		if err := l.wal.Append(b); err != nil {
			return nil, fmt.Errorf("blockchain: wal append: %w", err)
		}
	}
	l.blocks = append(l.blocks, b)
	l.applyTxsLocked(b)
	l.maybeSnapshotLocked()
	return &l.blocks[len(l.blocks)-1], nil
}

// applyTxsLocked runs the world-state transition for one block's
// transactions — the single code path AppendBlock, Restore and
// RestoreSnapshot all share, so live commit and both replay flavors
// are provably the same transition.
func (l *Ledger) applyTxsLocked(b Block) {
	for _, tx := range b.Txs {
		l.byID[tx.ID] = true
		l.byType[tx.Type] = append(l.byType[tx.Type], int(b.Number))
		if tx.Handle != "" {
			l.state[tx.Handle] = fmt.Sprintf("%s@block%d", tx.Type, b.Number)
		}
	}
}

// SetWAL attaches a write-ahead log for committed blocks (nil
// detaches). Call before the ledger takes traffic; typically right
// after Restore replayed the same WAL's history.
func (l *Ledger) SetWAL(w BlockWAL) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.wal = w
}

// Restore rebuilds the ledger from a replayed chain — the restart path.
// It refuses on a non-empty ledger, verifies numbering, linkage and
// every block hash before touching any state, then applies the blocks
// through exactly the same state transition AppendBlock uses, so a
// restored ledger is indistinguishable from one that committed the
// blocks live.
func (l *Ledger) Restore(blocks []Block) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.blocks) != 0 || l.base != 0 {
		return fmt.Errorf("blockchain: restore into non-empty ledger (height %d)", l.base+uint64(len(l.blocks)))
	}
	var prev []byte
	for i := range blocks {
		b := &blocks[i]
		if b.Number != uint64(i) {
			return fmt.Errorf("%w: block %d numbered %d", ErrChainBroken, i, b.Number)
		}
		if !bytes.Equal(b.PrevHash, prev) {
			return fmt.Errorf("%w: block %d prev-hash mismatch", ErrChainBroken, i)
		}
		if !bytes.Equal(b.Hash, b.computeHash()) {
			return fmt.Errorf("%w: block %d hash mismatch", ErrChainBroken, i)
		}
		prev = b.Hash
	}
	for _, b := range blocks {
		l.blocks = append(l.blocks, b)
		l.applyTxsLocked(b)
	}
	return nil
}

// StateHash returns a deterministic digest of the world state — sorted
// handle/value pairs plus the chain tip — so two ledgers (or one
// ledger before a crash and after replay) can be compared with a
// single value. Replaying the same WAL twice yields the same hash.
func (l *Ledger) StateHash() string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	handles := make([]string, 0, len(l.state))
	for h := range l.state {
		handles = append(handles, h)
	}
	sort.Strings(handles)
	h := sha256.New()
	write := func(b []byte) {
		var lenBuf [8]byte
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(b)))
		h.Write(lenBuf[:])
		h.Write(b)
	}
	for _, handle := range handles {
		write([]byte(handle))
		write([]byte(l.state[handle]))
	}
	if n := len(l.blocks); n > 0 {
		write(l.blocks[n-1].Hash)
	} else if len(l.baseHash) > 0 {
		// Snapshot-restored with no tail yet: the snapshot's tip is the
		// chain tip, so the hash matches a full replay to the same height.
		write(l.baseHash)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Height returns the chain height — the number of blocks committed,
// including any folded into a restore snapshot.
func (l *Ledger) Height() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return int(l.base) + len(l.blocks)
}

// TxCount returns the number of committed transactions.
func (l *Ledger) TxCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.byID)
}

// Block returns a copy of block n. Blocks folded into a restore
// snapshot (n < Base) are no longer retained and return an error.
func (l *Ledger) Block(n uint64) (Block, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if n < l.base {
		return Block{}, fmt.Errorf("blockchain: block %d folded into snapshot (base %d)", n, l.base)
	}
	if n-l.base >= uint64(len(l.blocks)) {
		return Block{}, fmt.Errorf("blockchain: no block %d (height %d)", n, l.base+uint64(len(l.blocks)))
	}
	return l.blocks[n-l.base], nil
}

// Head returns the hash of the latest block, or nil if empty.
func (l *Ledger) Head() []byte {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.blocks) == 0 {
		if len(l.baseHash) > 0 {
			return append([]byte(nil), l.baseHash...)
		}
		return nil
	}
	return append([]byte(nil), l.blocks[len(l.blocks)-1].Hash...)
}

// VerifyChain re-hashes every block and checks linkage, returning
// ErrChainBroken on any inconsistency. Auditors run this before trusting
// query results.
func (l *Ledger) VerifyChain() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	prev := l.baseHash
	for i := range l.blocks {
		b := &l.blocks[i]
		if !bytes.Equal(b.PrevHash, prev) {
			return fmt.Errorf("%w: block %d prev-hash mismatch", ErrChainBroken, i)
		}
		if !bytes.Equal(b.Hash, b.computeHash()) {
			return fmt.Errorf("%w: block %d hash mismatch", ErrChainBroken, i)
		}
		prev = b.Hash
	}
	return nil
}

// HandleState returns the latest event recorded for a handle.
func (l *Ledger) HandleState(handle string) (string, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s, ok := l.state[handle]
	return s, ok
}

// Committed reports whether a transaction ID is on the chain.
func (l *Ledger) Committed(txID string) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.byID[txID]
}

// AuditQuery is the "auditor view" §IV-E describes: Hyperledger "allows
// an auditor to get access to the ledgers and search for use and
// processing of data". Zero-valued fields match everything.
type AuditQuery struct {
	Type    EventType
	Creator string
	Handle  string
	Since   time.Time
	Until   time.Time
}

// Audit returns every committed transaction matching the query, in chain
// order. On a snapshot-restored ledger only retained blocks (>= Base)
// are scanned: transactions folded into the snapshot still count for
// dedup and world state, but their full bodies live in the snapshotted
// prefix of the WAL, not in memory.
func (l *Ledger) Audit(q AuditQuery) []Transaction {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Transaction
	for i := range l.blocks {
		for _, tx := range l.blocks[i].Txs {
			if q.Type != "" && tx.Type != q.Type {
				continue
			}
			if q.Creator != "" && tx.Creator != q.Creator {
				continue
			}
			if q.Handle != "" && tx.Handle != q.Handle {
				continue
			}
			if !q.Since.IsZero() && tx.Timestamp.Before(q.Since) {
				continue
			}
			if !q.Until.IsZero() && tx.Timestamp.After(q.Until) {
				continue
			}
			out = append(out, tx)
		}
	}
	return out
}

// ProvenanceTrail returns the full event history of one handle — the
// data-provenance capability GDPR/HIPAA audits require (§IV).
func (l *Ledger) ProvenanceTrail(handle string) []Transaction {
	return l.Audit(AuditQuery{Handle: handle})
}
