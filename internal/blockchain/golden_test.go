// Golden-compatibility regression for crypto agility: a chain endorsed
// with legacy untagged RSA-PSS signatures, written before Ed25519 became
// the runtime default, must keep replaying, hash-verifying, and
// endorsement-verifying forever — and must accept an Ed25519-endorsed
// continuation, giving a mixed-algorithm chain.
//
// This file is an external test package because it drives the replay
// through internal/durable, which imports blockchain.
package blockchain_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"healthcloud/internal/blockchain"
	"healthcloud/internal/durable"
	"healthcloud/internal/hckrypto"
)

const (
	goldenDir = "testdata/golden_rsa_wal"

	// State hash of the 3-block fixture chain after replay. Pinned at
	// fixture generation time; regenerate with
	//
	//	HC_REGEN_GOLDEN=1 go test ./internal/blockchain -run TestRegenerateGoldenWAL -v
	//
	// and update this constant from the test's output.
	goldenRSAWALStateHash = "a9613ff055114297a8d82660cf1fb4805b4ca56f59834fe8337b3189bc1e9662"
)

// goldenTx builds the i-th fixture transaction of block b with every
// field fixed, so regeneration changes only the signing key.
func goldenTx(b, i int) blockchain.Transaction {
	return blockchain.Transaction{
		ID:        fmt.Sprintf("golden-%d-%d", b, i),
		Type:      blockchain.EventDataReceipt,
		Creator:   "golden-org",
		Handle:    fmt.Sprintf("record-%d-%d", b, i),
		DataHash:  []byte{byte(b), byte(i), 0xEE},
		Meta:      map[string]string{"study": "golden"},
		Timestamp: time.Unix(1700000000+int64(b*100+i), 0).UTC(),
	}
}

// TestRegenerateGoldenWAL rewrites the checked-in fixture. It is gated
// behind HC_REGEN_GOLDEN=1 because regeneration mints a fresh RSA key,
// which changes the WAL bytes and the pinned state hash.
func TestRegenerateGoldenWAL(t *testing.T) {
	if os.Getenv("HC_REGEN_GOLDEN") == "" {
		t.Skip("set HC_REGEN_GOLDEN=1 to regenerate the golden RSA WAL fixture")
	}
	if err := os.RemoveAll(goldenDir); err != nil {
		t.Fatal(err)
	}
	walDir := filepath.Join(goldenDir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		t.Fatal(err)
	}
	key, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		t.Fatal(err)
	}
	pemBytes, err := key.Verifier().MarshalPEM()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(goldenDir, "endorser.pem"), pemBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	wal, blocks, err := durable.OpenWAL(walDir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 0 {
		t.Fatalf("fresh fixture dir replayed %d blocks", len(blocks))
	}
	led := blockchain.NewLedger()
	led.SetWAL(wal)
	for b := 0; b < 3; b++ {
		txs := make([]blockchain.Transaction, 2)
		for i := range txs {
			txs[i] = goldenTx(b, i)
			// Legacy endorsement format: the raw RSA-PSS signature, no
			// envelope header — exactly what pre-agility peers produced.
			sig, err := key.Sign(txs[i].Digest())
			if err != nil {
				t.Fatal(err)
			}
			txs[i].Endorsements = []blockchain.Endorsement{{PeerID: "golden-peer", Signature: sig}}
		}
		if _, err := led.AppendBlock(txs); err != nil {
			t.Fatal(err)
		}
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("fixture regenerated; update goldenRSAWALStateHash to %q", led.StateHash())
}

// copyDir clones the fixture into a scratch dir: OpenWAL opens the
// segment for appending and the continuation writes a new block, neither
// of which may dirty the checked-in fixture.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGoldenRSAWALReplay is the compatibility pin: under the Ed25519
// runtime default, the stored RSA-endorsed chain still replays to the
// same state hash, its legacy endorsements still verify (and only under
// the RSA key), and an Ed25519-endorsed block appends cleanly on top —
// the resulting mixed-algorithm chain replays end to end.
func TestGoldenRSAWALReplay(t *testing.T) {
	pemBytes, err := os.ReadFile(filepath.Join(goldenDir, "endorser.pem"))
	if err != nil {
		t.Fatalf("reading fixture key (regenerate with HC_REGEN_GOLDEN=1?): %v", err)
	}
	rsaV, err := hckrypto.ParseVerifierPEM(pemBytes)
	if err != nil {
		t.Fatal(err)
	}
	if rsaV.Scheme() != hckrypto.SchemeRSAPSS {
		t.Fatalf("fixture key scheme = %q, want rsa-pss", rsaV.Scheme())
	}
	scratch := t.TempDir()
	copyDir(t, filepath.Join(goldenDir, "wal"), scratch)

	wal, blocks, err := durable.OpenWAL(scratch, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("fixture replayed %d blocks, want 3", len(blocks))
	}
	led := blockchain.NewLedger()
	if err := led.Restore(blocks); err != nil {
		t.Fatalf("restoring RSA-endorsed chain: %v", err)
	}
	if err := led.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	if got := led.StateHash(); got != goldenRSAWALStateHash {
		t.Fatalf("state hash drifted:\n got %s\nwant %s", got, goldenRSAWALStateHash)
	}

	// Every stored endorsement is a legacy untagged RSA-PSS signature:
	// VerifyEnvelope must accept it under the RSA key and under nothing
	// else — the Ed25519 default cannot retroactively break stored chains.
	edKey, err := hckrypto.NewEd25519KeyFromSeed(bytes.Repeat([]byte{0x07}, 32))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		for _, tx := range b.Txs {
			for _, e := range tx.Endorsements {
				if !hckrypto.VerifyEnvelope(rsaV, tx.Digest(), e.Signature) {
					t.Fatalf("legacy endorsement on %s no longer verifies", tx.ID)
				}
				if hckrypto.VerifyEnvelope(edKey.Verifier(), tx.Digest(), e.Signature) {
					t.Fatalf("legacy RSA endorsement on %s verified under ed25519", tx.ID)
				}
			}
		}
	}

	// Continue the chain under the new default: one Ed25519-endorsed
	// block on top of the RSA history.
	led.SetWAL(wal)
	tx := goldenTx(3, 0)
	env, err := hckrypto.SignEnvelope(edKey, tx.Digest())
	if err != nil {
		t.Fatal(err)
	}
	tx.Endorsements = []blockchain.Endorsement{{PeerID: "ed-peer", Signature: env}}
	if _, err := led.AppendBlock([]blockchain.Transaction{tx}); err != nil {
		t.Fatalf("appending ed25519-endorsed block onto RSA chain: %v", err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	// The mixed-algorithm chain must replay end to end, each endorsement
	// verifying under its own scheme's key and no other.
	wal2, blocks2, err := durable.OpenWAL(scratch, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if len(blocks2) != 4 {
		t.Fatalf("mixed chain replayed %d blocks, want 4", len(blocks2))
	}
	led2 := blockchain.NewLedger()
	if err := led2.Restore(blocks2); err != nil {
		t.Fatalf("restoring mixed-algorithm chain: %v", err)
	}
	if err := led2.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	tail := blocks2[3].Txs[0]
	sig := tail.Endorsements[0].Signature
	if !hckrypto.VerifyEnvelope(edKey.Verifier(), tail.Digest(), sig) {
		t.Fatal("ed25519 endorsement on the continuation block failed to verify")
	}
	if hckrypto.VerifyEnvelope(rsaV, tail.Digest(), sig) {
		t.Fatal("ed25519 endorsement verified under the RSA key")
	}
}
