package blockchain

import (
	"bytes"
	"fmt"
	"sort"
)

// Snapshot captures a ledger's entire derived state at a block
// boundary: it covers blocks [0, Height) and carries everything
// AppendBlock accumulates — world state, committed tx IDs (the
// at-least-once dedup set), and the per-type block index — plus the
// tip hash so a restored ledger can verify that the first tail block
// links onto it. A ledger restored from (snapshot, tail) is
// indistinguishable from one that replayed the full chain, which the
// replay-from-snapshot test pins by comparing StateHash values.
type Snapshot struct {
	Height  uint64              `json:"height"`             // blocks covered: [0, Height)
	TipHash []byte              `json:"tip_hash,omitempty"` // hash of block Height-1
	State   map[string]string   `json:"state,omitempty"`
	TxIDs   []string            `json:"tx_ids,omitempty"` // sorted committed tx IDs
	ByType  map[EventType][]int `json:"by_type,omitempty"`
}

// SnapshotWAL is the optional capability a BlockWAL implements to also
// persist periodic world-state snapshots. When a ledger configured
// with SetSnapshotEvery commits a block at a K-boundary it offers a
// snapshot to the WAL; implementations are free to skip it (another
// peer already framed one, or the log has moved on) because snapshots
// are purely a replay-cost optimization — the block stream alone is
// always sufficient to rebuild state.
type SnapshotWAL interface {
	AppendSnapshot(s Snapshot) error
}

// SetSnapshotEvery arranges for a world-state snapshot to be offered
// to the attached WAL every k blocks (0, the default, disables). A
// snapshot failure never fails the commit that triggered it: the
// block is already durable, and losing a snapshot only costs a longer
// replay on the next restart.
func (l *Ledger) SetSnapshotEvery(k int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if k < 0 {
		k = 0
	}
	l.snapEvery = uint64(k)
}

// Base returns the height below which blocks were folded into the
// snapshot this ledger was restored from (0 for a full chain).
// Blocks in [0, Base) are not retained and cannot be read back.
func (l *Ledger) Base() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.base
}

// Snapshot captures the current derived state (see the Snapshot type).
// The ledger keeps serving while the copy is made.
func (l *Ledger) Snapshot() Snapshot {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.snapshotLocked()
}

// snapshotLocked builds a deterministic state capture under l.mu.
func (l *Ledger) snapshotLocked() Snapshot {
	s := Snapshot{
		Height: l.base + uint64(len(l.blocks)),
		State:  make(map[string]string, len(l.state)),
		TxIDs:  make([]string, 0, len(l.byID)),
		ByType: make(map[EventType][]int, len(l.byType)),
	}
	if n := len(l.blocks); n > 0 {
		s.TipHash = append([]byte(nil), l.blocks[n-1].Hash...)
	} else {
		s.TipHash = append([]byte(nil), l.baseHash...)
	}
	for h, v := range l.state {
		s.State[h] = v
	}
	for id := range l.byID {
		s.TxIDs = append(s.TxIDs, id)
	}
	sort.Strings(s.TxIDs)
	for t, blocks := range l.byType {
		s.ByType[t] = append([]int(nil), blocks...)
	}
	return s
}

// maybeSnapshotLocked offers a snapshot to the WAL when the chain just
// crossed a SetSnapshotEvery boundary. Best-effort by design: the
// triggering block is already durable, so a snapshot error only means
// the next restart replays more blocks.
func (l *Ledger) maybeSnapshotLocked() {
	if l.snapEvery == 0 || l.wal == nil {
		return
	}
	sw, ok := l.wal.(SnapshotWAL)
	if !ok {
		return
	}
	if h := l.base + uint64(len(l.blocks)); h == 0 || h%l.snapEvery != 0 {
		return
	}
	_ = sw.AppendSnapshot(l.snapshotLocked())
}

// RestoreSnapshot rebuilds the ledger from a snapshot plus the blocks
// committed after it — the bounded-replay restart path. It refuses on
// a non-empty ledger, verifies that the tail chains onto the
// snapshot's tip (numbering, linkage, every block hash) before
// touching any state, then applies the tail through the same state
// transition AppendBlock uses. Blocks below the snapshot height are
// not retained: Block and Audit only see the tail, but StateHash,
// HandleState, Committed and TxCount answer exactly as a full replay
// would.
func (l *Ledger) RestoreSnapshot(snap Snapshot, tail []Block) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.blocks) != 0 || l.base != 0 {
		return fmt.Errorf("blockchain: restore into non-empty ledger (height %d)", l.base+uint64(len(l.blocks)))
	}
	prev := snap.TipHash
	for i := range tail {
		b := &tail[i]
		if b.Number != snap.Height+uint64(i) {
			return fmt.Errorf("%w: tail block %d numbered %d (want %d)",
				ErrChainBroken, i, b.Number, snap.Height+uint64(i))
		}
		if !bytes.Equal(b.PrevHash, prev) {
			return fmt.Errorf("%w: tail block %d prev-hash mismatch", ErrChainBroken, b.Number)
		}
		if !bytes.Equal(b.Hash, b.computeHash()) {
			return fmt.Errorf("%w: tail block %d hash mismatch", ErrChainBroken, b.Number)
		}
		prev = b.Hash
	}
	l.base = snap.Height
	l.baseHash = append([]byte(nil), snap.TipHash...)
	for h, v := range snap.State {
		l.state[h] = v
	}
	for _, id := range snap.TxIDs {
		l.byID[id] = true
	}
	for t, blocks := range snap.ByType {
		l.byType[t] = append([]int(nil), blocks...)
	}
	for _, b := range tail {
		l.blocks = append(l.blocks, b)
		l.applyTxsLocked(b)
	}
	return nil
}
