package blockchain

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"healthcloud/internal/telemetry"
)

// submitN pushes n transactions through the batcher from workers
// concurrent goroutines and returns the submitted IDs plus any errors.
func submitN(t *testing.T, b *Batcher, n, workers int) []string {
	t.Helper()
	ids := make([]string, n)
	txs := make([]Transaction, n)
	for i := range txs {
		txs[i] = NewTransaction(EventDataReceipt, "svc", fmt.Sprintf("h-%d", i), nil, nil)
		ids[i] = txs[i].ID
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = b.Submit(txs[i], testTimeout)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	return ids
}

// TestBatcherStress hammers the batcher from 16 goroutines and asserts
// exactly-once ledger semantics: every submitted transaction is
// committed on every peer, none twice, none lost.
func TestBatcherStress(t *testing.T) {
	n := newTestNetwork(t, 3, 2)
	b := NewBatcher(n, BatcherConfig{MaxBatch: 64, MaxDelay: 2 * time.Millisecond})
	defer b.Close()

	const total, workers = 200, 16
	ids := submitN(t, b, total, workers)

	for _, peerID := range n.PeerIDs() {
		p, _ := n.Peer(peerID)
		if got := p.Ledger().TxCount(); got != total {
			t.Errorf("%s: TxCount = %d, want %d (lost or duplicated events)", peerID, got, total)
		}
		for _, id := range ids {
			if !p.Ledger().Committed(id) {
				t.Errorf("%s: tx %s not committed", peerID, id)
			}
		}
		if err := p.Ledger().VerifyChain(); err != nil {
			t.Errorf("%s: chain: %v", peerID, err)
		}
	}
	st := b.Stats()
	// Threshold, not equality: a poison-free run counts each tx exactly
	// once, but timing-dependent fallback re-submissions may only ever
	// push the counter up — losing a tx is the failure being pinned.
	if st.Txs < total {
		t.Errorf("stats: txs = %d, want >= %d", st.Txs, total)
	}
	if st.Commits == 0 || st.Commits > total {
		t.Errorf("stats: commits = %d out of range (0,%d]", st.Commits, total)
	}
	if st.MeanBatchSize() <= 1 {
		t.Errorf("mean batch size %.2f — batching never coalesced under 16 concurrent producers", st.MeanBatchSize())
	}
}

// TestBatcherGroupEndorsementVerified proves group commits still pass
// real endorsement checks: a tampered group envelope is rejected by
// every peer's pump.
func TestBatcherGroupEndorsementVerified(t *testing.T) {
	n := newTestNetwork(t, 3, 2)
	txs := []Transaction{
		NewTransaction(EventDataReceipt, "svc", "h-a", nil, nil),
		NewTransaction(EventDataReceipt, "svc", "h-b", nil, nil),
	}
	group, err := n.endorseGroup(txs)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.checkGroupEndorsements(txs, group); err != nil {
		t.Fatalf("valid group rejected: %v", err)
	}
	// Tamper with a transaction after endorsement — digest changes.
	txs[1].Handle = "h-evil"
	if err := n.checkGroupEndorsements(txs, group); !errors.Is(err, ErrBadEndorsement) {
		t.Errorf("tampered group: got %v, want ErrBadEndorsement", err)
	}
	// Reorder the batch — GroupDigest binds order.
	txs[1].Handle = "h-b"
	txs[0], txs[1] = txs[1], txs[0]
	if err := n.checkGroupEndorsements(txs, group); !errors.Is(err, ErrBadEndorsement) {
		t.Errorf("reordered group: got %v, want ErrBadEndorsement", err)
	}
	// Under-endorsed group.
	if err := n.checkGroupEndorsements(txs, nil); !errors.Is(err, ErrNotEndorsed) {
		t.Errorf("empty group: got %v, want ErrNotEndorsed", err)
	}
}

// TestBatcherPoisonFallback proves one rejected transaction inside a
// group cannot fail its neighbors: the batcher falls back to individual
// submission and only the poison waiter gets the error.
func TestBatcherPoisonFallback(t *testing.T) {
	reject := func(tx *Transaction) error {
		if tx.Meta["poison"] == "yes" {
			return errors.New("business rule says no")
		}
		return nil
	}
	n := newTestNetwork(t, 3, 2, WithValidation(reject))
	// A long window so all three submissions land in one group.
	b := NewBatcher(n, BatcherConfig{MaxBatch: 3, MaxDelay: time.Minute})
	defer b.Close()

	good1 := NewTransaction(EventDataReceipt, "svc", "g1", nil, nil)
	poison := NewTransaction(EventDataReceipt, "svc", "p", nil, map[string]string{"poison": "yes"})
	good2 := NewTransaction(EventDataReceipt, "svc", "g2", nil, nil)

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, tx := range []Transaction{good1, poison, good2} {
		wg.Add(1)
		go func(i int, tx Transaction) {
			defer wg.Done()
			errs[i] = b.Submit(tx, testTimeout)
		}(i, tx)
	}
	wg.Wait()

	if errs[0] != nil || errs[2] != nil {
		t.Errorf("good txs failed alongside poison: %v / %v", errs[0], errs[2])
	}
	if !errors.Is(errs[1], ErrTxRejected) {
		t.Errorf("poison tx: got %v, want ErrTxRejected", errs[1])
	}
	p, _ := n.Peer("peer-0")
	if !p.Ledger().Committed(good1.ID) || !p.Ledger().Committed(good2.ID) {
		t.Error("good txs not committed after poison fallback")
	}
	if p.Ledger().Committed(poison.ID) {
		t.Error("poison tx committed")
	}
	// At least one fallback: normally the three submissions coalesce into
	// one poisoned group, but scheduling can split them across groups and
	// each poisoned group falls back once.
	if st := b.Stats(); st.Fallbacks < 1 {
		t.Errorf("fallbacks = %d, want >= 1", st.Fallbacks)
	}
}

// TestBatcherCloseDrains proves Close commits every accepted
// transaction and signals every waiter — nothing is dropped or left
// hanging at shutdown.
func TestBatcherCloseDrains(t *testing.T) {
	n := newTestNetwork(t, 3, 2)
	// Pathological window: without the close-time drain these waiters
	// would block for an hour.
	b := NewBatcher(n, BatcherConfig{MaxBatch: 1000, MaxDelay: time.Hour})

	const total = 8
	errs := make([]error, total)
	ids := make([]string, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		tx := NewTransaction(EventDataReceipt, "svc", fmt.Sprintf("h-%d", i), nil, nil)
		ids[i] = tx.ID
		wg.Add(1)
		go func(i int, tx Transaction) {
			defer wg.Done()
			errs[i] = b.Submit(tx, testTimeout)
		}(i, tx)
	}
	// Wait until all eight are enqueued, then close.
	deadline := time.Now().Add(5 * time.Second)
	for b.QueueDepth() < total && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d := b.QueueDepth(); d != total {
		t.Fatalf("queue depth %d, want %d", d, total)
	}
	done := make(chan struct{})
	go func() { b.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain within 10s")
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("waiter %d got error at close: %v", i, err)
		}
	}
	p, _ := n.Peer("peer-0")
	for _, id := range ids {
		if !p.Ledger().Committed(id) {
			t.Errorf("tx %s dropped at close", id)
		}
	}
	// After close, submits are refused rather than silently dropped.
	if err := b.Submit(NewTransaction(EventDataReceipt, "svc", "late", nil, nil), time.Second); !errors.Is(err, ErrBatcherClosed) {
		t.Errorf("post-close submit: got %v, want ErrBatcherClosed", err)
	}
	b.Close() // idempotent
}

// TestBatcherTelemetry checks the batcher's gauges, histograms and
// counters land in the registry under the network label.
func TestBatcherTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(8, 64)
	n := newTestNetwork(t, 3, 2, WithTelemetry(reg, tr))
	b := NewBatcher(n, BatcherConfig{MaxBatch: 8, MaxDelay: 2 * time.Millisecond, Registry: reg, Tracer: tr})
	defer b.Close()

	submitN(t, b, 20, 8)

	snap := reg.Snapshot()
	label := `{network="provenance"}`
	if got := snap.Counters["ledger_group_txs_total"+label]; got < 20 {
		t.Errorf("ledger_group_txs_total = %d, want >= 20", got)
	}
	if got := snap.Counters["ledger_group_commits_total"+label]; got == 0 {
		t.Error("ledger_group_commits_total not incremented")
	}
	h, ok := snap.Histograms["ledger_batch_size"+label]
	if !ok || h.Count == 0 {
		t.Fatalf("ledger_batch_size histogram missing or empty: %+v", h)
	}
	if lat := snap.Histograms["ledger_group_commit_seconds"+label]; lat.Count == 0 {
		t.Error("ledger_group_commit_seconds histogram empty")
	}
	if _, ok := snap.Gauges["ledger_batch_queue_depth"+label]; !ok {
		t.Error("ledger_batch_queue_depth gauge missing")
	}
}

// TestParallelEndorseMatchesSerialSemantics pins the parallel EndorseAll
// behavior: the policy is satisfied with exactly policyK endorsements, a
// rejecting fast-path peer is replaced by the serial fallback peer, and
// a universally rejected tx returns the rejection reason.
func TestParallelEndorseMatchesSerialSemantics(t *testing.T) {
	n := newTestNetwork(t, 3, 2)
	tx := NewTransaction(EventDataReceipt, "svc", "h", nil, nil)
	if err := n.EndorseAll(&tx); err != nil {
		t.Fatal(err)
	}
	if len(tx.Endorsements) != 2 {
		t.Errorf("endorsements = %d, want exactly policyK=2", len(tx.Endorsements))
	}
	if err := n.checkEndorsements(&tx); err != nil {
		t.Errorf("parallel endorsements fail policy check: %v", err)
	}

	// Make peer-0 reject: the fast path loses one signature and the
	// serial fallback must pick up peer-2 to still meet the policy.
	n2 := newTestNetwork(t, 3, 2)
	n2.peers["peer-0"].validate = func(tx *Transaction) error { return errors.New("no") }
	tx2 := NewTransaction(EventDataReceipt, "svc", "h2", nil, nil)
	if err := n2.EndorseAll(&tx2); err != nil {
		t.Fatalf("fallback path: %v", err)
	}
	got := map[string]bool{}
	for _, e := range tx2.Endorsements {
		got[e.PeerID] = true
	}
	if !got["peer-1"] || !got["peer-2"] || got["peer-0"] {
		t.Errorf("fallback endorsers = %v, want peer-1+peer-2", got)
	}
	if err := n2.checkEndorsements(&tx2); err != nil {
		t.Errorf("fallback endorsements fail policy check: %v", err)
	}

	rejectAll := errors.New("nope")
	n3 := newTestNetwork(t, 3, 2, WithValidation(func(tx *Transaction) error { return rejectAll }))
	tx3 := NewTransaction(EventDataReceipt, "svc", "h3", nil, nil)
	if err := n3.EndorseAll(&tx3); !errors.Is(err, ErrTxRejected) {
		t.Errorf("universally rejected tx: got %v, want ErrTxRejected", err)
	}
}
