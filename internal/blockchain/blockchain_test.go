package blockchain

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"healthcloud/internal/faultinject"
	"healthcloud/internal/hckrypto"
)

const testTimeout = 10 * time.Second

func newTestNetwork(t *testing.T, peers int, policyK int, opts ...Option) *Network {
	t.Helper()
	ids := make([]string, peers)
	for i := range ids {
		ids[i] = fmt.Sprintf("peer-%d", i)
	}
	n, err := NewNetwork("provenance", ids, policyK, opts...)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	t.Cleanup(n.Close)
	return n
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork("x", nil, 1); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := NewNetwork("x", []string{"a"}, 0); err == nil {
		t.Error("policy 0 accepted")
	}
	if _, err := NewNetwork("x", []string{"a"}, 2); err == nil {
		t.Error("policy > peers accepted")
	}
}

func TestSubmitCommitsOnAllPeers(t *testing.T) {
	n := newTestNetwork(t, 3, 2)
	tx := NewTransaction(EventDataReceipt, "ingest-svc", "handle-1", []byte("hash"), map[string]string{"bundle": "b1"})
	if err := n.Submit(tx, testTimeout); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for _, id := range n.PeerIDs() {
		p, err := n.Peer(id)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Ledger().Committed(tx.ID) {
			t.Errorf("%s missing tx", id)
		}
		if state, ok := p.Ledger().HandleState("handle-1"); !ok || !strings.HasPrefix(state, string(EventDataReceipt)) {
			t.Errorf("%s handle state = %q, %v", id, state, ok)
		}
	}
}

// TestCheckSubmitPathSideEffectFree pins the health-probe contract: the
// dry-run submit check must exercise the fault point and the
// endorsement policy without growing any peer's ledger, and must
// surface injected submit faults as errors.
func TestCheckSubmitPathSideEffectFree(t *testing.T) {
	faults := faultinject.NewRegistry(7)
	n := newTestNetwork(t, 3, 2, WithFaults(faults))
	tx := NewTransaction(EventDataReceipt, "ingest-svc", "handle-1", []byte("hash"), nil)
	if err := n.Submit(tx, testTimeout); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	heights := make(map[string]int)
	for _, id := range n.PeerIDs() {
		p, _ := n.Peer(id)
		heights[id] = p.Ledger().Height()
	}
	for i := 0; i < 10; i++ {
		if err := n.CheckSubmitPath(); err != nil {
			t.Fatalf("healthy CheckSubmitPath: %v", err)
		}
	}
	// Ten probe rounds, zero record growth — on every peer.
	for _, id := range n.PeerIDs() {
		p, _ := n.Peer(id)
		if got := p.Ledger().Height(); got != heights[id] {
			t.Errorf("%s ledger height %d after probes, want %d (probes must not commit)", id, got, heights[id])
		}
	}
	faults.Enable(FaultSubmit, faultinject.Fault{ErrorRate: 1})
	if err := n.CheckSubmitPath(); err == nil {
		t.Error("CheckSubmitPath missed an injected submit fault")
	}
	faults.Disable(FaultSubmit)
	if err := n.CheckSubmitPath(); err != nil {
		t.Errorf("CheckSubmitPath after fault cleared: %v", err)
	}
}

func TestLedgersConvergeIdentically(t *testing.T) {
	n := newTestNetwork(t, 3, 1)
	for i := 0; i < 5; i++ {
		tx := NewTransaction(EventDataRetrieval, "svc", fmt.Sprintf("h-%d", i), nil, nil)
		if err := n.Submit(tx, testTimeout); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	var head []byte
	for _, id := range n.PeerIDs() {
		p, _ := n.Peer(id)
		if err := p.Ledger().VerifyChain(); err != nil {
			t.Errorf("%s chain: %v", id, err)
		}
		h := p.Ledger().Head()
		if head == nil {
			head = h
		} else if string(h) != string(head) {
			t.Errorf("%s head diverges", id)
		}
	}
}

func TestEndorsementPolicyRejectsUnderEndorsed(t *testing.T) {
	n := newTestNetwork(t, 3, 2)
	tx := NewTransaction(EventDataReceipt, "svc", "h", nil, nil)
	// Hand-endorse with only one peer, bypassing EndorseAll.
	p, _ := n.Peer("peer-0")
	e, err := p.Endorse(&tx)
	if err != nil {
		t.Fatal(err)
	}
	tx.Endorsements = []Endorsement{e}
	if err := n.checkEndorsements(&tx); !errors.Is(err, ErrNotEndorsed) {
		t.Errorf("got %v, want ErrNotEndorsed", err)
	}
}

func TestEndorsementDuplicatesDontCount(t *testing.T) {
	n := newTestNetwork(t, 3, 2)
	tx := NewTransaction(EventDataReceipt, "svc", "h", nil, nil)
	p, _ := n.Peer("peer-0")
	e, err := p.Endorse(&tx)
	if err != nil {
		t.Fatal(err)
	}
	tx.Endorsements = []Endorsement{e, e, e}
	if err := n.checkEndorsements(&tx); !errors.Is(err, ErrNotEndorsed) {
		t.Errorf("duplicate endorsements counted: %v", err)
	}
}

func TestEndorsementForgedSignatureRejected(t *testing.T) {
	n := newTestNetwork(t, 2, 1)
	tx := NewTransaction(EventDataReceipt, "svc", "h", nil, nil)
	forged := Endorsement{PeerID: "peer-0", Signature: []byte("not a signature")}
	tx.Endorsements = []Endorsement{forged}
	if err := n.checkEndorsements(&tx); !errors.Is(err, ErrBadEndorsement) {
		t.Errorf("got %v, want ErrBadEndorsement", err)
	}
}

func TestEndorsementUnknownPeerRejected(t *testing.T) {
	n := newTestNetwork(t, 2, 1)
	tx := NewTransaction(EventDataReceipt, "svc", "h", nil, nil)
	tx.Endorsements = []Endorsement{{PeerID: "mallory", Signature: []byte("sig")}}
	if err := n.checkEndorsements(&tx); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("got %v, want ErrUnknownPeer", err)
	}
}

func TestTamperedTxFailsEndorsementCheck(t *testing.T) {
	n := newTestNetwork(t, 2, 1)
	tx := NewTransaction(EventDataReceipt, "svc", "handle-orig", nil, nil)
	if err := n.EndorseAll(&tx); err != nil {
		t.Fatal(err)
	}
	tx.Handle = "handle-swapped" // tamper after endorsement
	if err := n.checkEndorsements(&tx); !errors.Is(err, ErrBadEndorsement) {
		t.Errorf("got %v, want ErrBadEndorsement", err)
	}
}

func TestValidationRuleBlocksSubmission(t *testing.T) {
	rule := func(tx *Transaction) error {
		if tx.Type == EventMalwareReport && tx.Meta["severity"] == "" {
			return errors.New("malware reports need a severity")
		}
		return nil
	}
	n := newTestNetwork(t, 3, 2, WithValidation(rule))
	bad := NewTransaction(EventMalwareReport, "scanner", "h", nil, nil)
	err := n.Submit(bad, testTimeout)
	if !errors.Is(err, ErrTxRejected) {
		t.Errorf("got %v, want ErrTxRejected", err)
	}
	good := NewTransaction(EventMalwareReport, "scanner", "h", nil, map[string]string{"severity": "high"})
	if err := n.Submit(good, testTimeout); err != nil {
		t.Errorf("valid tx rejected: %v", err)
	}
}

func TestSubmitBatchSingleBlock(t *testing.T) {
	n := newTestNetwork(t, 3, 1)
	txs := make([]Transaction, 8)
	for i := range txs {
		txs[i] = NewTransaction(EventDataReceipt, "svc", fmt.Sprintf("h-%d", i), nil, nil)
	}
	if err := n.SubmitBatch(txs, testTimeout); err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	p, _ := n.Peer("peer-0")
	if p.Ledger().Height() != 1 {
		t.Errorf("height = %d, want 1 (one block per batch)", p.Ledger().Height())
	}
	if p.Ledger().TxCount() != 8 {
		t.Errorf("tx count = %d, want 8", p.Ledger().TxCount())
	}
	if err := n.SubmitBatch(nil, testTimeout); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

func TestAuditQueries(t *testing.T) {
	n := newTestNetwork(t, 2, 1)
	events := []struct {
		typ     EventType
		creator string
		handle  string
	}{
		{EventDataReceipt, "ingest", "rec-1"},
		{EventAnonymization, "anon-svc", "rec-1"},
		{EventDataRetrieval, "analytics", "rec-1"},
		{EventDataReceipt, "ingest", "rec-2"},
	}
	for _, e := range events {
		tx := NewTransaction(e.typ, e.creator, e.handle, nil, nil)
		if err := n.Submit(tx, testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := n.Peer("peer-0")
	ledger := p.Ledger()

	trail := ledger.ProvenanceTrail("rec-1")
	if len(trail) != 3 {
		t.Fatalf("provenance trail for rec-1 has %d events, want 3", len(trail))
	}
	wantOrder := []EventType{EventDataReceipt, EventAnonymization, EventDataRetrieval}
	for i, typ := range wantOrder {
		if trail[i].Type != typ {
			t.Errorf("trail[%d] = %s, want %s", i, trail[i].Type, typ)
		}
	}
	byCreator := ledger.Audit(AuditQuery{Creator: "ingest"})
	if len(byCreator) != 2 {
		t.Errorf("audit by creator: %d, want 2", len(byCreator))
	}
	byType := ledger.Audit(AuditQuery{Type: EventAnonymization})
	if len(byType) != 1 {
		t.Errorf("audit by type: %d, want 1", len(byType))
	}
	all := ledger.Audit(AuditQuery{})
	if len(all) != 4 {
		t.Errorf("unfiltered audit: %d, want 4", len(all))
	}
	none := ledger.Audit(AuditQuery{Until: time.Now().Add(-time.Hour)})
	if len(none) != 0 {
		t.Errorf("time-bounded audit: %d, want 0", len(none))
	}
}

func TestLedgerDetectsTamper(t *testing.T) {
	l := NewLedger()
	for i := 0; i < 3; i++ {
		tx := NewTransaction(EventDataReceipt, "svc", fmt.Sprintf("h-%d", i), nil, nil)
		if _, err := l.AppendBlock([]Transaction{tx}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.VerifyChain(); err != nil {
		t.Fatalf("untampered chain: %v", err)
	}
	// Reach in and alter a committed transaction.
	l.blocks[1].Txs[0].Handle = "forged"
	if err := l.VerifyChain(); !errors.Is(err, ErrChainBroken) {
		t.Errorf("got %v, want ErrChainBroken", err)
	}
}

func TestLedgerDedupsByTxID(t *testing.T) {
	l := NewLedger()
	tx := NewTransaction(EventDataReceipt, "svc", "h", nil, nil)
	if _, err := l.AppendBlock([]Transaction{tx}); err != nil {
		t.Fatal(err)
	}
	b, err := l.AppendBlock([]Transaction{tx}) // redelivery
	if err != nil {
		t.Fatal(err)
	}
	if b != nil {
		t.Error("duplicate tx produced a block")
	}
	if l.TxCount() != 1 || l.Height() != 1 {
		t.Errorf("count=%d height=%d, want 1/1", l.TxCount(), l.Height())
	}
}

func TestLedgerBlockAccess(t *testing.T) {
	l := NewLedger()
	if _, err := l.Block(0); err == nil {
		t.Error("block 0 of empty ledger accessible")
	}
	tx := NewTransaction(EventDataReceipt, "svc", "h", nil, nil)
	l.AppendBlock([]Transaction{tx})
	b, err := l.Block(0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Number != 0 || len(b.Txs) != 1 {
		t.Errorf("block = %+v", b)
	}
	if l.Head() == nil {
		t.Error("head nil after append")
	}
	if NewLedger().Head() != nil {
		t.Error("empty ledger has a head")
	}
}

func TestTransactionDigestSensitivity(t *testing.T) {
	base := Transaction{ID: "id", Type: EventDataReceipt, Creator: "c", Handle: "h",
		DataHash: []byte("d"), Meta: map[string]string{"k": "v"}, Timestamp: time.Unix(100, 0)}
	d0 := base.Digest()
	mutations := []func(*Transaction){
		func(tx *Transaction) { tx.ID = "id2" },
		func(tx *Transaction) { tx.Type = EventExport },
		func(tx *Transaction) { tx.Creator = "c2" },
		func(tx *Transaction) { tx.Handle = "h2" },
		func(tx *Transaction) { tx.DataHash = []byte("d2") },
		func(tx *Transaction) { tx.Meta = map[string]string{"k": "v2"} },
		func(tx *Transaction) { tx.Meta = map[string]string{"k2": "v"} },
		func(tx *Transaction) { tx.Timestamp = time.Unix(101, 0) },
	}
	for i, mutate := range mutations {
		tx := base
		mutate(&tx)
		if string(tx.Digest()) == string(d0) {
			t.Errorf("mutation %d did not change the digest", i)
		}
	}
	// Endorsements must NOT affect the digest (they sign it).
	tx := base
	tx.Endorsements = []Endorsement{{PeerID: "p", Signature: []byte("s")}}
	if string(tx.Digest()) != string(d0) {
		t.Error("endorsements changed the digest")
	}
}

func TestTransactionDigestMetaOrderIndependent(t *testing.T) {
	a := Transaction{ID: "x", Meta: map[string]string{"a": "1", "b": "2", "c": "3"}}
	b := Transaction{ID: "x", Meta: map[string]string{"c": "3", "b": "2", "a": "1"}}
	if string(a.Digest()) != string(b.Digest()) {
		t.Error("digest depends on map iteration order")
	}
}

func TestPHINeverOnChain(t *testing.T) {
	// Design-rule test: a provenance transaction carries only handle +
	// salted hash. Confirm the committed bytes do not contain the PHI.
	n := newTestNetwork(t, 2, 1)
	phi := []byte(`{"name":"Jane Doe","diagnosis":"T2D"}`)
	salt := []byte("per-record-salt")
	tx := NewTransaction(EventDataReceipt, "ingest", "ref-123", hckrypto.SaltedHash(salt, phi), nil)
	if err := n.Submit(tx, testTimeout); err != nil {
		t.Fatal(err)
	}
	p, _ := n.Peer("peer-0")
	b, err := p.Ledger().Block(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, committed := range b.Txs {
		if strings.Contains(string(committed.DataHash), "Jane Doe") ||
			committed.Handle == string(phi) {
			t.Error("PHI leaked onto the ledger")
		}
	}
}

// TestCommitUnderLossyOrdering injects 15% message loss into the
// ordering fabric and verifies the ledger still commits and converges —
// the availability property §IV's threat model demands under degraded
// networks.
func TestCommitUnderLossyOrdering(t *testing.T) {
	n := newTestNetwork(t, 3, 2)
	n.OrderingNetwork().SetDropRate(0.15)
	for i := 0; i < 5; i++ {
		tx := NewTransaction(EventDataReceipt, "svc", fmt.Sprintf("lossy-%d", i), nil, nil)
		if err := n.Submit(tx, 30*time.Second); err != nil {
			t.Fatalf("submit %d under loss: %v", i, err)
		}
	}
	n.OrderingNetwork().SetDropRate(0)
	var head []byte
	for _, id := range n.PeerIDs() {
		p, _ := n.Peer(id)
		if err := p.Ledger().VerifyChain(); err != nil {
			t.Errorf("%s chain after loss: %v", id, err)
		}
		if p.Ledger().TxCount() != 5 {
			t.Errorf("%s committed %d txs, want 5", id, p.Ledger().TxCount())
		}
		h := p.Ledger().Head()
		if head == nil {
			head = h
		} else if string(h) != string(head) {
			t.Errorf("%s head diverged after lossy ordering", id)
		}
	}
}

// TestCommitAcrossOrderingPartition heals a partition mid-stream and
// requires all peers to converge on identical chains.
func TestCommitAcrossOrderingPartition(t *testing.T) {
	n := newTestNetwork(t, 3, 1)
	tx1 := NewTransaction(EventDataReceipt, "svc", "pre-partition", nil, nil)
	if err := n.Submit(tx1, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	// Isolate one ordering node; a majority remains. Submit's contract is
	// commit-on-ALL-peers, so it must report a timeout while the isolated
	// peer cannot catch up — but the majority must already hold the tx.
	n.OrderingNetwork().Isolate("node-2")
	tx2 := NewTransaction(EventDataReceipt, "svc", "during-partition", nil, nil)
	if err := n.Submit(tx2, 3*time.Second); err == nil {
		t.Fatal("Submit reported all-peer commit despite a partitioned peer")
	}
	committed := 0
	for _, id := range n.PeerIDs() {
		p, _ := n.Peer(id)
		if p.Ledger().Committed(tx2.ID) {
			committed++
		}
	}
	if committed < 2 {
		t.Fatalf("only %d peers committed during partition, want majority", committed)
	}
	n.OrderingNetwork().Heal()
	tx3 := NewTransaction(EventDataReceipt, "svc", "post-heal", nil, nil)
	if err := n.Submit(tx3, 30*time.Second); err != nil {
		t.Fatalf("submit post-heal: %v", err)
	}
	// All peers (including the one fed by the previously isolated node)
	// converge to 3 committed transactions.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, id := range n.PeerIDs() {
			p, _ := n.Peer(id)
			if p.Ledger().TxCount() != 3 {
				all = false
			}
		}
		if all {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, id := range n.PeerIDs() {
		p, _ := n.Peer(id)
		if got := p.Ledger().TxCount(); got != 3 {
			t.Errorf("%s committed %d txs after heal, want 3", id, got)
		}
		if err := p.Ledger().VerifyChain(); err != nil {
			t.Errorf("%s chain: %v", id, err)
		}
	}
}
