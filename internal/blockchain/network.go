package blockchain

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"healthcloud/internal/consensus"
	"healthcloud/internal/faultinject"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/telemetry"
)

// FaultSubmit is the fault point consulted on every ledger submission
// (see internal/faultinject).
const FaultSubmit = "blockchain.submit"

// Network is one permissioned blockchain network (§IV names several:
// provenance, malware management, privacy, identity). Peers endorse,
// a Raft cluster orders, and every peer independently validates and
// commits the ordered stream to its own ledger copy.
type Network struct {
	name     string
	policyK  int // endorsements required
	peerIDs  []string
	peers    map[string]*Peer
	keys     map[string]hckrypto.Verifier
	cluster  *consensus.Cluster
	faults   *faultinject.Registry
	tracer   *telemetry.Tracer
	met      *netMetrics
	stopOnce sync.Once
	wg       sync.WaitGroup

	// orderPerTx > 0 models the ordering service as a serial device:
	// each ordering round holds orderMu for perTx × batch-size, the
	// way E19's lake device model charges per-object service time.
	// Set before the network takes traffic (experiments only).
	orderMu    sync.Mutex
	orderPerTx time.Duration

	// Block-cut cadence (the go-blockchain-time metric): interval
	// between consecutive blocks cut on the lead peer's chain.
	cutMu   sync.Mutex
	lastCut time.Time
	cutN    uint64 // blocks cut
	cutSum  time.Duration
	cutIvls uint64 // intervals recorded (cutN-1 once cutting)
}

// netMetrics caches the ledger's metric handles; nil disables metrics.
type netMetrics struct {
	submits, submitErrs        *telemetry.Counter
	commitErrs                 *telemetry.Counter
	endorse, order, commitWait *telemetry.Histogram
	blockCut                   *telemetry.Histogram
}

func newNetMetrics(reg *telemetry.Registry, network string) *netMetrics {
	if reg == nil {
		return nil
	}
	label := fmt.Sprintf("{network=%q}", network)
	return &netMetrics{
		submits:    reg.Counter("ledger_submits_total" + label),
		submitErrs: reg.Counter("ledger_submit_errors_total" + label),
		commitErrs: reg.Counter("ledger_commit_errors_total" + label),
		endorse:    reg.Histogram("ledger_endorse_seconds" + label),
		order:      reg.Histogram("ledger_order_seconds" + label),
		commitWait: reg.Histogram("ledger_commit_wait_seconds" + label),
		blockCut:   reg.Histogram("ledger_block_cut_seconds" + label),
	}
}

// Option configures a Network.
type Option func(*options)

type options struct {
	validate func(*Transaction) error
	raftCfg  consensus.Config
	faults   *faultinject.Registry
	reg      *telemetry.Registry
	tracer   *telemetry.Tracer
	scheme   hckrypto.Scheme
}

// WithValidation installs the peers' endorsement rule (smart-contract
// stand-in).
func WithValidation(f func(*Transaction) error) Option {
	return func(o *options) { o.validate = f }
}

// WithRaftConfig overrides ordering-cluster tuning.
func WithRaftConfig(cfg consensus.Config) Option {
	return func(o *options) { o.raftCfg = cfg }
}

// WithFaults installs a fault-injection registry consulted at
// FaultSubmit before each submission (nil disables).
func WithFaults(r *faultinject.Registry) Option {
	return func(o *options) { o.faults = r }
}

// WithSignatureScheme pins the endorsement signature scheme for every
// peer on the network (crypto agility). Zero value means the platform
// default (Ed25519); networks replaying chains endorsed under RSA-PSS
// pin that here. Mixed-algorithm verification still works regardless —
// the scheme rides in each endorsement's signature envelope.
func WithSignatureScheme(s hckrypto.Scheme) Option {
	return func(o *options) { o.scheme = s }
}

// WithTelemetry instruments the network: submit counters plus
// endorse/order/commit-wait latency histograms on reg, and per-phase
// spans on tracer (either may be nil).
func WithTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) Option {
	return func(o *options) {
		o.reg = reg
		o.tracer = tracer
	}
}

// NewNetwork creates a network with the given peers. policyK is the
// number of endorsements a transaction needs to be valid; it must be
// between 1 and len(peerIDs).
func NewNetwork(name string, peerIDs []string, policyK int, opts ...Option) (*Network, error) {
	if len(peerIDs) == 0 {
		return nil, errors.New("blockchain: network needs at least one peer")
	}
	if policyK < 1 || policyK > len(peerIDs) {
		return nil, fmt.Errorf("blockchain: policy %d out of range [1,%d]", policyK, len(peerIDs))
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	n := &Network{
		name:    name,
		faults:  o.faults,
		tracer:  o.tracer,
		met:     newNetMetrics(o.reg, name),
		policyK: policyK,
		peerIDs: append([]string(nil), peerIDs...),
		peers:   make(map[string]*Peer, len(peerIDs)),
		keys:    make(map[string]hckrypto.Verifier, len(peerIDs)),
	}
	if o.scheme == "" {
		o.scheme = hckrypto.DefaultScheme
	}
	sort.Strings(n.peerIDs)
	for _, id := range n.peerIDs {
		p, err := NewPeerWithScheme(id, o.scheme, o.validate)
		if err != nil {
			return nil, err
		}
		n.peers[id] = p
		n.keys[id] = p.Verifier()
	}
	// One ordering node per peer, mirroring Fabric's Raft ordering service.
	n.cluster = consensus.NewCluster(len(n.peerIDs), o.raftCfg)
	n.cluster.SetTelemetry(o.reg)
	for i, id := range n.peerIDs {
		n.wg.Add(1)
		// The first (sorted) peer is the cadence reference: every peer
		// cuts the same blocks, so one chain's timing is the network's.
		go n.pump(n.cluster.Nodes[i], n.peers[id], i == 0)
	}
	return n, nil
}

// pump applies the ordered stream to one peer's ledger (the "validate"
// and "commit" phases). lead marks the block-cut cadence reference peer.
func (n *Network) pump(node *consensus.Node, peer *Peer, lead bool) {
	defer n.wg.Done()
	for com := range node.Apply() {
		txs, group, err := decodeBatch(com.Entry.Data)
		if err != nil {
			continue // malformed batches are skipped deterministically
		}
		var valid []Transaction
		if len(group) > 0 {
			// Group-endorsed batch: one set of signatures covers the
			// whole batch, all-or-nothing. Every peer makes the same
			// deterministic decision, keeping ledgers identical.
			if n.checkGroupEndorsements(txs, group) == nil {
				valid = txs
			}
		} else {
			valid = txs[:0]
			for _, tx := range txs {
				if n.checkEndorsements(&tx) == nil {
					valid = append(valid, tx)
				}
			}
		}
		if len(valid) > 0 {
			// A commit can now fail for real: with a WAL attached, the
			// block must be durable before the world state applies. The
			// block is simply not committed on this peer — the submitter's
			// commit-wait times out and the caller retries, exactly like
			// any other transient ledger failure.
			if blk, err := peer.Ledger().AppendBlock(valid); err != nil {
				if n.met != nil {
					n.met.commitErrs.Inc()
				}
			} else if lead && blk != nil {
				n.noteBlockCut()
			}
		}
	}
}

// checkEndorsements enforces the endorsement policy: at least policyK
// distinct known peers with valid signatures over the tx digest.
func (n *Network) checkEndorsements(tx *Transaction) error {
	digest := tx.Digest()
	seen := make(map[string]bool, len(tx.Endorsements))
	for _, e := range tx.Endorsements {
		key, ok := n.keys[e.PeerID]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownPeer, e.PeerID)
		}
		if seen[e.PeerID] {
			continue
		}
		if !hckrypto.VerifyEnvelope(key, digest, e.Signature) {
			return ErrBadEndorsement
		}
		seen[e.PeerID] = true
	}
	if len(seen) < n.policyK {
		return fmt.Errorf("%w: have %d, need %d", ErrNotEndorsed, len(seen), n.policyK)
	}
	return nil
}

// checkGroupEndorsements enforces the endorsement policy for a
// group-endorsed batch: at least policyK distinct known peers with valid
// signatures over the batch's GroupDigest.
func (n *Network) checkGroupEndorsements(txs []Transaction, group []Endorsement) error {
	digest := GroupDigest(txs)
	seen := make(map[string]bool, len(group))
	for _, e := range group {
		key, ok := n.keys[e.PeerID]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownPeer, e.PeerID)
		}
		if seen[e.PeerID] {
			continue
		}
		if !hckrypto.VerifyEnvelope(key, digest, e.Signature) {
			return ErrBadEndorsement
		}
		seen[e.PeerID] = true
	}
	if len(seen) < n.policyK {
		return fmt.Errorf("%w: have %d, need %d", ErrNotEndorsed, len(seen), n.policyK)
	}
	return nil
}

// SetOrderServiceTime models the ordering service as a serial device
// charging perTx per transaction per round: each ordering round holds
// the device for perTx × batch-size before proposing, so a single
// network's ordering throughput is capped at 1/perTx tx/s no matter
// how many submitters pile on — the honest baseline experiment E21
// scales against, mirroring how E19's DataLake.SetServiceTime models
// disk service time. Zero (the default) disables. Call before the
// network takes traffic.
func (n *Network) SetOrderServiceTime(perTx time.Duration) { n.orderPerTx = perTx }

// noteBlockCut records one block landing on the lead peer's chain and
// the interval since the previous cut — the per-channel block-cut
// cadence metric (ledger_block_cut_seconds).
func (n *Network) noteBlockCut() {
	now := time.Now()
	n.cutMu.Lock()
	n.cutN++
	if !n.lastCut.IsZero() {
		d := now.Sub(n.lastCut)
		n.cutIvls++
		n.cutSum += d
		if n.met != nil {
			n.met.blockCut.Observe(d)
		}
	}
	n.lastCut = now
	n.cutMu.Unlock()
}

// BlockCutStats reports how many blocks the lead peer has cut and the
// mean interval between consecutive cuts (0 until two blocks exist).
func (n *Network) BlockCutStats() (blocks uint64, meanInterval time.Duration) {
	n.cutMu.Lock()
	defer n.cutMu.Unlock()
	if n.cutIvls > 0 {
		meanInterval = n.cutSum / time.Duration(n.cutIvls)
	}
	return n.cutN, meanInterval
}

// Name returns the network name.
func (n *Network) Name() string { return n.name }

// Peer returns a member by ID.
func (n *Network) Peer(id string) (*Peer, error) {
	p, ok := n.peers[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPeer, id)
	}
	return p, nil
}

// PeerIDs returns the sorted member list.
func (n *Network) PeerIDs() []string { return append([]string(nil), n.peerIDs...) }

// OrderingLeader reports the ordering cluster's settled leader, if any
// — the consensus-liveness signal a health prober checks. ok is false
// while an election is in flight (or the network is nil).
func (n *Network) OrderingLeader() (id string, ok bool) {
	if n == nil || n.cluster == nil {
		return "", false
	}
	leader := n.cluster.Leader()
	if leader == nil {
		return "", false
	}
	return leader.ID(), true
}

// CheckSubmitPath is the ledger's side-effect-free health check. It
// walks the front half of the submit lifecycle — the FaultSubmit fault
// point (experiencing any injected error or latency exactly as a real
// submission would) and a full policy's worth of endorsements over a
// throwaway transaction — but never proposes to the ordering cluster,
// so no block is appended and no ledger grows. Health probes call this
// on every round; committing a real transaction per probe would bloat
// the audit-grade ledger (and let unauthenticated readiness requests
// force consensus commits).
func (n *Network) CheckSubmitPath() error {
	if err := n.faults.Check(FaultSubmit); err != nil {
		return fmt.Errorf("blockchain: %w", err)
	}
	tx := NewTransaction(EventWorkloadAttest, "monitor", "health-probe", nil,
		map[string]string{"probe": "readyz"})
	if err := n.EndorseAll(&tx); err != nil {
		return fmt.Errorf("blockchain: probing endorsement path: %w", err)
	}
	return nil
}

// NewTransaction builds an unendorsed transaction with a fresh ID.
func NewTransaction(typ EventType, creator, handle string, dataHash []byte, meta map[string]string) Transaction {
	return Transaction{
		ID:        hckrypto.NewUUID(),
		Type:      typ,
		Creator:   creator,
		Handle:    handle,
		DataHash:  dataHash,
		Meta:      meta,
		Timestamp: time.Now().UTC(),
	}
}

// EndorseAll collects endorsements from up to policyK peers. The happy
// path fans out to the first policyK peers (sorted order) in parallel —
// each endorsement is an independent signature, so the requests
// don't serialize behind each other. If any of those peers rejects, the
// remaining peers are tried serially in order until the policy is met.
// Deliberately only policyK signatures are requested (not all peers):
// endorsement work stays proportional to policy strictness, which is the
// cost model ablation A2 pins. If the policy cannot be met the first
// rejection reason is returned.
func (n *Network) EndorseAll(tx *Transaction) error {
	if len(tx.Endorsements) >= n.policyK {
		return nil
	}
	type result struct {
		e   Endorsement
		err error
	}
	k := n.policyK
	results := make([]result, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i].e, results[i].err = n.peers[n.peerIDs[i]].Endorse(tx)
		}(i)
	}
	wg.Wait()
	var firstErr error
	for i := 0; i < k; i++ {
		if results[i].err != nil {
			if firstErr == nil {
				firstErr = results[i].err
			}
			continue
		}
		tx.Endorsements = append(tx.Endorsements, results[i].e)
	}
	for i := k; i < len(n.peerIDs) && len(tx.Endorsements) < n.policyK; i++ {
		e, err := n.peers[n.peerIDs[i]].Endorse(tx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		tx.Endorsements = append(tx.Endorsements, e)
	}
	if len(tx.Endorsements) < n.policyK {
		if firstErr != nil {
			return firstErr
		}
		return ErrNotEndorsed
	}
	return nil
}

// endorseGroup collects batch-level endorsements: each of the first
// policyK peers validates every transaction and signs one GroupDigest.
// On rejection the remaining peers are tried serially, mirroring
// EndorseAll's fallback.
func (n *Network) endorseGroup(txs []Transaction) ([]Endorsement, error) {
	type result struct {
		e   Endorsement
		err error
	}
	k := n.policyK
	results := make([]result, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i].e, results[i].err = n.peers[n.peerIDs[i]].EndorseGroup(txs)
		}(i)
	}
	wg.Wait()
	group := make([]Endorsement, 0, k)
	var firstErr error
	for i := 0; i < k; i++ {
		if results[i].err != nil {
			if firstErr == nil {
				firstErr = results[i].err
			}
			continue
		}
		group = append(group, results[i].e)
	}
	for i := k; i < len(n.peerIDs) && len(group) < k; i++ {
		e, err := n.peers[n.peerIDs[i]].EndorseGroup(txs)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		group = append(group, e)
	}
	if len(group) < k {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, ErrNotEndorsed
	}
	return group, nil
}

// Submit runs the full lifecycle for one transaction: endorse, order,
// and wait until it is committed on every peer's ledger.
func (n *Network) Submit(tx Transaction, timeout time.Duration) error {
	return n.SubmitBatchCtx([]Transaction{tx}, timeout, telemetry.SpanContext{})
}

// SubmitCtx is Submit continuing a caller's trace: endorse, order and
// commit-wait appear as spans under parent (ingest.TracedLedger).
func (n *Network) SubmitCtx(tx Transaction, timeout time.Duration, parent telemetry.SpanContext) error {
	return n.SubmitBatchCtx([]Transaction{tx}, timeout, parent)
}

// SubmitBatch endorses every transaction and submits them as a single
// ordering batch (one block), then waits for commit everywhere. Batching
// is how experiment E6 amortizes ordering cost.
func (n *Network) SubmitBatch(txs []Transaction, timeout time.Duration) error {
	return n.SubmitBatchCtx(txs, timeout, telemetry.SpanContext{})
}

// phase runs one submit phase under a span and latency histogram, both
// nil-safe no-ops when telemetry is off.
func (n *Network) phase(parent telemetry.SpanContext, name string, h *telemetry.Histogram, f func() error) error {
	sp := n.tracer.StartSpan(name, parent)
	start := h.Start()
	err := f()
	h.ObserveSinceTrace(start, parent.TraceID)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	return err
}

// SubmitBatchCtx is SubmitBatch continuing a caller's trace.
func (n *Network) SubmitBatchCtx(txs []Transaction, timeout time.Duration, parent telemetry.SpanContext) error {
	return n.submit(txs, timeout, parent, false)
}

// SubmitGroupCtx endorses the whole batch as a unit — each of policyK
// peers validates every transaction but signs a single GroupDigest —
// then orders and commit-waits like SubmitBatchCtx. This is the
// group-commit fast path used by the Batcher: endorsement cost is
// amortized across the batch instead of paid per transaction.
// Commit is all-or-nothing; callers that need per-transaction error
// isolation (the Batcher) fall back to individual submission on error.
func (n *Network) SubmitGroupCtx(txs []Transaction, timeout time.Duration, parent telemetry.SpanContext) error {
	return n.submit(txs, timeout, parent, true)
}

func (n *Network) submit(txs []Transaction, timeout time.Duration, parent telemetry.SpanContext, group bool) error {
	if len(txs) == 0 {
		return nil
	}
	if err := n.faults.Check(FaultSubmit); err != nil {
		return fmt.Errorf("blockchain: %w", err)
	}
	sp := n.tracer.StartSpan("ledger.submit", parent)
	sp.SetAttr("network", n.name)
	sp.SetAttr("batch", strconv.Itoa(len(txs)))
	if group {
		sp.SetAttr("group", "true")
	}
	if n.met != nil {
		n.met.submits.Inc()
	}
	err := n.submitPhases(txs, timeout, sp.Context(), group)
	if err != nil {
		sp.SetAttr("error", err.Error())
		if n.met != nil {
			n.met.submitErrs.Inc()
		}
	}
	sp.End()
	return err
}

// submitPhases runs endorse → order → commit-wait, each as a traced
// phase so the per-stage breakdown can attribute ordering overhead.
func (n *Network) submitPhases(txs []Transaction, timeout time.Duration, pctx telemetry.SpanContext, group bool) error {
	var eh, oh, ch *telemetry.Histogram
	if n.met != nil {
		eh, oh, ch = n.met.endorse, n.met.order, n.met.commitWait
	}
	var groupEndos []Endorsement
	if err := n.phase(pctx, "ledger.endorse", eh, func() error {
		if group {
			endos, err := n.endorseGroup(txs)
			if err != nil {
				return fmt.Errorf("blockchain: endorsing group of %d: %w", len(txs), err)
			}
			groupEndos = endos
			return nil
		}
		for i := range txs {
			if err := n.EndorseAll(&txs[i]); err != nil {
				return fmt.Errorf("blockchain: endorsing %s: %w", txs[i].ID, err)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	data, err := encodeEnvelope(txs, groupEndos)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(timeout)
	if err := n.phase(pctx, "ledger.order", oh, func() error {
		if n.orderPerTx > 0 {
			// Serial ordering device (see SetOrderServiceTime): rounds
			// queue behind each other, paying per-transaction service time.
			n.orderMu.Lock()
			time.Sleep(n.orderPerTx * time.Duration(len(txs)))
			n.orderMu.Unlock()
		}
		if _, err := n.cluster.ProposeAndWait(data, timeout); err != nil {
			return fmt.Errorf("blockchain: ordering: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}
	// Wait until the last tx of the batch lands on every peer.
	lastID := txs[len(txs)-1].ID
	return n.phase(pctx, "ledger.commit-wait", ch, func() error {
		for time.Now().Before(deadline) {
			all := true
			for _, id := range n.peerIDs {
				if !n.peers[id].Ledger().Committed(lastID) {
					all = false
					break
				}
			}
			if all {
				return nil
			}
			time.Sleep(2 * time.Millisecond)
		}
		return errors.New("blockchain: commit not observed on all peers within timeout")
	})
}

// Close shuts down the ordering cluster and waits for the apply pumps to
// drain; each node closes its apply channel on stop.
func (n *Network) Close() {
	n.stopOnce.Do(func() {
		n.cluster.Stop()
		n.wg.Wait()
	})
}

// OrderingNetwork exposes the ordering cluster's message fabric for
// failure-injection tests (drops, delays, partitions).
func (n *Network) OrderingNetwork() *consensus.Network { return n.cluster.Net }
