package blockchain

import (
	"fmt"
	"sync"

	"healthcloud/internal/hckrypto"
)

// Peer is one organization's member on a blockchain network: it endorses
// transactions it considers valid and maintains its own copy of the
// ledger from the ordered stream. The paper's networks have peers for
// "sender ..., receiver ..., healthcare provider ..., data protection
// service, audit service as well as other services" (§IV-B1).
type Peer struct {
	id  string
	key hckrypto.Signer

	// validate lets each peer apply its own business rules before
	// endorsing (smart-contract stand-in). Nil means endorse anything
	// well-formed.
	validate func(*Transaction) error

	mu     sync.RWMutex
	ledger *Ledger
}

// NewPeer creates a peer with a fresh signing identity under the
// platform's default signature scheme.
func NewPeer(id string, validate func(*Transaction) error) (*Peer, error) {
	return NewPeerWithScheme(id, hckrypto.DefaultScheme, validate)
}

// NewPeerWithScheme creates a peer whose endorsement identity uses the
// given signature scheme. Networks replaying chains endorsed under an
// older scheme pin it here; new networks take the default.
func NewPeerWithScheme(id string, scheme hckrypto.Scheme, validate func(*Transaction) error) (*Peer, error) {
	key, err := hckrypto.NewSigner(scheme)
	if err != nil {
		return nil, fmt.Errorf("blockchain: peer key: %w", err)
	}
	return &Peer{id: id, key: key, validate: validate, ledger: NewLedger()}, nil
}

// ID returns the peer's identity.
func (p *Peer) ID() string { return p.id }

// Scheme returns the signature scheme the peer endorses under.
func (p *Peer) Scheme() hckrypto.Scheme { return p.key.Scheme() }

// Verifier returns the peer's public endorsement-verification key.
func (p *Peer) Verifier() hckrypto.Verifier { return p.key.Verifier() }

// Endorse validates the transaction against the peer's rules and signs
// its digest. This is the "endorse" phase of the lifecycle.
func (p *Peer) Endorse(tx *Transaction) (Endorsement, error) {
	if p.validate != nil {
		if err := p.validate(tx); err != nil {
			return Endorsement{}, fmt.Errorf("%w: %s: %v", ErrTxRejected, p.id, err)
		}
	}
	sig, err := hckrypto.SignEnvelope(p.key, tx.Digest())
	if err != nil {
		return Endorsement{}, fmt.Errorf("blockchain: endorsing: %w", err)
	}
	return Endorsement{PeerID: p.id, Signature: sig}, nil
}

// EndorseGroup validates every transaction in the batch against the
// peer's rules and signs a single GroupDigest covering all of them. This
// is the group-commit fast path: one signature amortizes endorsement
// cost across the whole batch while each transaction still passes the
// peer's validation rule individually.
func (p *Peer) EndorseGroup(txs []Transaction) (Endorsement, error) {
	if p.validate != nil {
		for i := range txs {
			if err := p.validate(&txs[i]); err != nil {
				return Endorsement{}, fmt.Errorf("%w: %s: %s: %v", ErrTxRejected, p.id, txs[i].ID, err)
			}
		}
	}
	sig, err := hckrypto.SignEnvelope(p.key, GroupDigest(txs))
	if err != nil {
		return Endorsement{}, fmt.Errorf("blockchain: endorsing group: %w", err)
	}
	return Endorsement{PeerID: p.id, Signature: sig}, nil
}

// Ledger returns the peer's view of the chain.
func (p *Peer) Ledger() *Ledger {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.ledger
}
