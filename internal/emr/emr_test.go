package emr

import (
	"math"
	"testing"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Patients = 200
	return cfg
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{Patients: 0, Drugs: 5, VisitsMin: 2, VisitsMax: 4},
		{Patients: 5, Drugs: 0, VisitsMin: 2, VisitsMax: 4},
		{Patients: 5, Drugs: 5, VisitsMin: 1, VisitsMax: 4},
		{Patients: 5, Drugs: 5, VisitsMin: 4, VisitsMax: 2},
		{Patients: 5, Drugs: 5, VisitsMin: 2, VisitsMax: 4, TrueEffects: map[int]float64{9: -1}},
		{Patients: 5, Drugs: 5, VisitsMin: 2, VisitsMax: 4, ConfoundPairs: [][2]int{{0, 9}}},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Patients) != 200 {
		t.Fatalf("patients = %d", len(ds.Patients))
	}
	for _, p := range ds.Patients {
		if len(p.Visits) < ds.Cfg.VisitsMin || len(p.Visits) > ds.Cfg.VisitsMax {
			t.Fatalf("%s has %d visits", p.ID, len(p.Visits))
		}
		for _, v := range p.Visits {
			for _, d := range v.Drugs {
				if d < 0 || d >= ds.Cfg.Drugs {
					t.Fatalf("drug index %d out of range", d)
				}
			}
		}
	}
	if ds.TotalVisits() < 200*ds.Cfg.VisitsMin {
		t.Errorf("total visits = %d", ds.TotalVisits())
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Generate(smallConfig())
	b, _ := Generate(smallConfig())
	for i := range a.Patients {
		if a.Patients[i].Baseline != b.Patients[i].Baseline {
			t.Fatal("same seed produced different cohorts")
		}
		for j := range a.Patients[i].Visits {
			if a.Patients[i].Visits[j].HbA1c != b.Patients[i].Visits[j].HbA1c {
				t.Fatal("same seed produced different labs")
			}
		}
	}
}

func TestPatientBaselinesVary(t *testing.T) {
	ds, _ := Generate(smallConfig())
	var mean, sq float64
	for _, p := range ds.Patients {
		mean += p.Baseline
	}
	mean /= float64(len(ds.Patients))
	for _, p := range ds.Patients {
		sq += (p.Baseline - mean) * (p.Baseline - mean)
	}
	sd := math.Sqrt(sq / float64(len(ds.Patients)))
	if sd < 0.8 {
		t.Errorf("baseline SD = %f; the α_i diversity DELT models is missing", sd)
	}
}

// TestPlantedEffectVisible verifies that exposure to the strong drug
// (β=-1.2) lowers HbA1c within-patient — the raw signal DELT must find.
func TestPlantedEffectVisible(t *testing.T) {
	ds, _ := Generate(smallConfig())
	var diffSum float64
	var n int
	for _, p := range ds.Patients {
		var expSum, expN, unexpSum, unexpN float64
		for _, v := range p.Visits {
			exposed := false
			for _, d := range v.Drugs {
				if d == 0 {
					exposed = true
				}
			}
			if exposed {
				expSum += v.HbA1c
				expN++
			} else {
				unexpSum += v.HbA1c
				unexpN++
			}
		}
		if expN > 0 && unexpN > 0 {
			diffSum += expSum/expN - unexpSum/unexpN
			n++
		}
	}
	if n < 20 {
		t.Fatalf("only %d patients have within-patient contrast for drug 0", n)
	}
	meanDiff := diffSum / float64(n)
	if meanDiff > -0.5 {
		t.Errorf("within-patient effect of drug 0 = %.2f, want strongly negative", meanDiff)
	}
}

// TestConfoundingPresent verifies the decoy drug is marginally associated
// with lower HbA1c despite having zero true effect — the trap for the
// marginal baseline in experiment E10.
func TestConfoundingPresent(t *testing.T) {
	ds, _ := Generate(smallConfig())
	decoy := ds.Cfg.ConfoundPairs[0][0]
	partner := ds.Cfg.ConfoundPairs[0][1]
	if ds.TrueBeta[decoy] != 0 {
		t.Fatalf("decoy %d has a true effect", decoy)
	}
	// Decoy and partner co-occur far more often than chance.
	var both, decoyOnly int
	for _, p := range ds.Patients {
		for _, v := range p.Visits {
			hasDecoy, hasPartner := false, false
			for _, d := range v.Drugs {
				if d == decoy {
					hasDecoy = true
				}
				if d == partner {
					hasPartner = true
				}
			}
			if hasDecoy && hasPartner {
				both++
			} else if hasDecoy {
				decoyOnly++
			}
		}
	}
	if both == 0 || float64(both)/float64(both+decoyOnly) < 0.5 {
		t.Errorf("co-prescription too weak: both=%d, decoyOnly=%d", both, decoyOnly)
	}
	// Marginal (cross-patient, no baseline) association of the decoy is
	// negative — the confounded signal.
	var expSum, expN, unexpSum, unexpN float64
	for _, p := range ds.Patients {
		for _, v := range p.Visits {
			exposed := false
			for _, d := range v.Drugs {
				if d == decoy {
					exposed = true
				}
			}
			if exposed {
				expSum += v.HbA1c
				expN++
			} else {
				unexpSum += v.HbA1c
				unexpN++
			}
		}
	}
	if expN == 0 {
		t.Fatal("decoy never prescribed")
	}
	marginal := expSum/expN - unexpSum/unexpN
	if marginal > -0.2 {
		t.Errorf("decoy marginal association = %.2f, want clearly negative (confounded)", marginal)
	}
}

func TestExposureStats(t *testing.T) {
	ds, _ := Generate(smallConfig())
	stats := ds.ExposureStats()
	if len(stats) != ds.Cfg.Drugs {
		t.Fatalf("stats length = %d", len(stats))
	}
	total := 0
	for _, n := range stats {
		total += n
	}
	if total == 0 {
		t.Fatal("no exposures generated")
	}
	// Every drug in the effect set must have meaningful exposure, or the
	// recovery experiment is vacuous.
	for d := range ds.Cfg.TrueEffects {
		if stats[d] < 50 {
			t.Errorf("drug %d has only %d exposed visits", d, stats[d])
		}
	}
}
