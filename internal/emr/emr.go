// Package emr generates synthetic Real-World-Evidence data standing in
// for the Explorys SuperMart and Truven MarketScan databases of §V-B
// (DESIGN.md substitution table): longitudinal patients with drug
// prescription histories and HbA1c laboratory series. The generating
// process mirrors the DELT paper's model (Figs 10–11):
//
//	y_ij = α_i + γ_i·t_ij + Σ_d β_d·x_ijd + comorbidity_i(t_ij) + ε
//
// α_i is the patient-specific baseline ("different healthy patients may
// have different normal laboratory test values"), γ_i·t is aging drift,
// comorbidity_i is a persistent step change at a random onset (both are
// the confounders Fig 11 describes), β_d are the true drug effects —
// known here, so recovery is verifiable — and selected no-effect drugs
// are co-prescribed with effective ones to create exactly the
// co-medication confounding that defeats marginal analyses.
package emr

import (
	"fmt"
	"math/rand"
)

// Visit is one lab measurement with the drug exposures active at that
// time (x_ij of Fig 10).
type Visit struct {
	Time  float64 // years since enrollment
	Drugs []int   // indices of drugs the patient is on at this visit
	HbA1c float64 // y_ij
}

// Patient is one longitudinal record.
type Patient struct {
	ID       string
	Baseline float64 // α_i (ground truth)
	Drift    float64 // γ_i (ground truth aging slope)
	Visits   []Visit
}

// Config sizes the synthetic cohort.
type Config struct {
	Patients int
	Drugs    int
	// TrueEffects maps drug index -> β (HbA1c units). Unlisted drugs
	// have zero effect.
	TrueEffects map[int]float64
	// ConfoundPairs lists (decoy, effective) drug pairs that are
	// co-prescribed ~80% of the time: the decoy has no effect but
	// marginally correlates with lowered HbA1c.
	ConfoundPairs [][2]int
	VisitsMin     int
	VisitsMax     int
	NoiseSD       float64
	Seed          int64
}

// DefaultConfig is the cohort used by examples and benches: 2000
// patients, 30 drugs, five true HbA1c-lowering effects, and two decoy
// drugs riding along with effective ones.
func DefaultConfig() Config {
	return Config{
		Patients: 2000,
		Drugs:    30,
		TrueEffects: map[int]float64{
			0: -1.2, // strong (think metformin)
			1: -0.8,
			2: -0.5,
			3: -0.3,
			4: +0.4, // a blood-sugar-raising drug (e.g. a steroid)
		},
		ConfoundPairs: [][2]int{{10, 0}, {11, 1}},
		VisitsMin:     6,
		VisitsMax:     14,
		NoiseSD:       0.25,
		Seed:          7,
	}
}

// Dataset is the generated cohort plus ground truth.
type Dataset struct {
	Cfg      Config
	Patients []Patient
	TrueBeta []float64 // per drug
}

// Generate builds a cohort.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Patients <= 0 || cfg.Drugs <= 0 {
		return nil, fmt.Errorf("emr: sizes must be positive: %+v", cfg)
	}
	if cfg.VisitsMin < 2 || cfg.VisitsMax < cfg.VisitsMin {
		return nil, fmt.Errorf("emr: need VisitsMax >= VisitsMin >= 2")
	}
	for d := range cfg.TrueEffects {
		if d < 0 || d >= cfg.Drugs {
			return nil, fmt.Errorf("emr: effect drug %d out of range", d)
		}
	}
	for _, p := range cfg.ConfoundPairs {
		if p[0] < 0 || p[0] >= cfg.Drugs || p[1] < 0 || p[1] >= cfg.Drugs {
			return nil, fmt.Errorf("emr: confound pair %v out of range", p)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Cfg: cfg, TrueBeta: make([]float64, cfg.Drugs)}
	for d, b := range cfg.TrueEffects {
		ds.TrueBeta[d] = b
	}
	confoundOf := make(map[int]int) // effective drug -> decoy that tags along
	for _, p := range cfg.ConfoundPairs {
		confoundOf[p[1]] = p[0]
	}

	for i := 0; i < cfg.Patients; i++ {
		p := Patient{
			ID:       fmt.Sprintf("patient-%05d", i),
			Baseline: 6.0 + 1.2*rng.NormFloat64(), // diverse α_i
			Drift:    0.05 + 0.05*rng.NormFloat64(),
		}
		nVisits := cfg.VisitsMin + rng.Intn(cfg.VisitsMax-cfg.VisitsMin+1)
		// Prescription episodes: the patient takes 2..6 drugs, each over
		// a contiguous visit interval.
		nDrugs := 2 + rng.Intn(5)
		type episode struct {
			drug       int
			start, end int
		}
		var episodes []episode
		for e := 0; e < nDrugs; e++ {
			d := rng.Intn(cfg.Drugs)
			start := rng.Intn(nVisits)
			end := start + 1 + rng.Intn(nVisits-start)
			episodes = append(episodes, episode{d, start, end})
			// Co-medication confounding: the decoy joins ~80% of the
			// effective drug's episodes with the same interval.
			if decoy, ok := confoundOf[d]; ok && rng.Float64() < 0.8 {
				episodes = append(episodes, episode{decoy, start, end})
			}
		}
		// Comorbidity shock: 30% of patients acquire a persistent +step
		// at a random onset (the Fig 11 confounder).
		comorbidAt, comorbidDelta := -1, 0.0
		if rng.Float64() < 0.3 {
			comorbidAt = rng.Intn(nVisits)
			comorbidDelta = 0.3 + 0.4*rng.Float64()
		}
		for j := 0; j < nVisits; j++ {
			t := float64(j) * 0.5 // visits every 6 months
			active := make(map[int]bool)
			for _, ep := range episodes {
				if j >= ep.start && j < ep.end {
					active[ep.drug] = true
				}
			}
			y := p.Baseline + p.Drift*t
			drugs := make([]int, 0, len(active))
			for d := range active {
				drugs = append(drugs, d)
			}
			// Sum effects in sorted order: float addition is not
			// associative, so map-iteration order would make the labs
			// nondeterministic across runs of the same seed.
			sortInts(drugs)
			for _, d := range drugs {
				y += ds.TrueBeta[d]
			}
			if comorbidAt >= 0 && j >= comorbidAt {
				y += comorbidDelta
			}
			y += cfg.NoiseSD * rng.NormFloat64()
			p.Visits = append(p.Visits, Visit{Time: t, Drugs: drugs, HbA1c: y})
		}
		ds.Patients = append(ds.Patients, p)
	}
	return ds, nil
}

// ExposureStats returns, per drug, how many visits were exposed.
func (ds *Dataset) ExposureStats() []int {
	out := make([]int, ds.Cfg.Drugs)
	for _, p := range ds.Patients {
		for _, v := range p.Visits {
			for _, d := range v.Drugs {
				out[d]++
			}
		}
	}
	return out
}

// TotalVisits counts measurements across the cohort.
func (ds *Dataset) TotalVisits() int {
	n := 0
	for _, p := range ds.Patients {
		n += len(p.Visits)
	}
	return n
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
