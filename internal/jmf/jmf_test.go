package jmf

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"healthcloud/internal/kb"
)

// testData generates a small dataset once for the package.
func testData(t *testing.T) *kb.Dataset {
	t.Helper()
	cfg := kb.DefaultConfig()
	cfg.Drugs, cfg.Diseases = 80, 60
	d, err := kb.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func drugSims(d *kb.Dataset) [][][]float64 {
	var out [][][]float64
	for _, src := range kb.DrugSources {
		out = append(out, d.DrugSim[src])
	}
	return out
}

func disSims(d *kb.Dataset) [][][]float64 {
	var out [][][]float64
	for _, src := range kb.DiseaseSources {
		out = append(out, d.DisSim[src])
	}
	return out
}

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Iterations = 150
	return cfg
}

func TestFitValidation(t *testing.T) {
	R := [][]float64{{1, 0}, {0, 1}}
	if _, err := Fit(R, nil, nil, Config{Rank: 0, Iterations: 10, WeightExp: 2}); !errors.Is(err, ErrInput) {
		t.Errorf("rank 0: %v", err)
	}
	if _, err := Fit(R, nil, nil, Config{Rank: 2, Iterations: 10, WeightExp: 1}); !errors.Is(err, ErrInput) {
		t.Errorf("weight exp 1: %v", err)
	}
	if _, err := Fit(nil, nil, nil, quickConfig()); !errors.Is(err, ErrInput) {
		t.Errorf("nil R: %v", err)
	}
	badS := [][][]float64{{{1}}}
	if _, err := Fit(R, badS, nil, quickConfig()); !errors.Is(err, ErrInput) {
		t.Errorf("mis-sized S: %v", err)
	}
	badT := [][][]float64{{{1}}}
	if _, err := Fit(R, nil, badT, quickConfig()); !errors.Is(err, ErrInput) {
		t.Errorf("mis-sized T: %v", err)
	}
}

func TestObjectiveDecreases(t *testing.T) {
	d := testData(t)
	train, _ := d.HoldOut(0.1, 1)
	m, err := Fit(train, drugSims(d), disSims(d), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Objective) < 5 {
		t.Fatalf("too few iterations recorded: %d", len(m.Objective))
	}
	// Monotone within tolerance (multiplicative updates + weight updates
	// can wobble slightly; require overall decrease and near-monotonicity).
	first, last := m.Objective[0], m.Objective[len(m.Objective)-1]
	if last >= first {
		t.Errorf("objective did not decrease: %f -> %f", first, last)
	}
	violations := 0
	for i := 1; i < len(m.Objective); i++ {
		if m.Objective[i] > m.Objective[i-1]*1.001 {
			violations++
		}
	}
	if violations > len(m.Objective)/10 {
		t.Errorf("objective increased in %d/%d iterations", violations, len(m.Objective))
	}
}

func TestFactorsNonnegative(t *testing.T) {
	d := testData(t)
	train, _ := d.HoldOut(0.1, 1)
	m, err := Fit(train, drugSims(d), disSims(d), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.F.Data {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("F contains invalid value %f", v)
		}
	}
	for _, v := range m.G.Data {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("G contains invalid value %f", v)
		}
	}
}

func TestSourceWeightsOnSimplex(t *testing.T) {
	d := testData(t)
	train, _ := d.HoldOut(0.1, 1)
	m, err := Fit(train, drugSims(d), disSims(d), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range [][]float64{m.DrugWeights, m.DiseaseWeight} {
		sum := 0.0
		for _, v := range w {
			if v < 0 {
				t.Fatalf("negative weight %f", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("weights sum to %f", sum)
		}
	}
}

// TestGarbageSourceDownWeighted is the interpretable-importance claim
// under the harshest test: an information-free random similarity source
// must receive far less weight than every informative source, and its
// presence must not wreck prediction quality.
func TestGarbageSourceDownWeighted(t *testing.T) {
	d := testData(t)
	train, held := d.HoldOut(0.15, 1)
	rng := rand.New(rand.NewSource(9))
	n := len(d.DrugIDs)
	garbage := make([][]float64, n)
	for i := range garbage {
		garbage[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		garbage[i][i] = 1
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			garbage[i][j], garbage[j][i] = v, v
		}
	}
	S := append(drugSims(d), garbage)
	m, err := Fit(train, S, disSims(d), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	garbageW := m.DrugWeights[len(m.DrugWeights)-1]
	for p := 0; p < len(m.DrugWeights)-1; p++ {
		if garbageW >= m.DrugWeights[p] {
			t.Errorf("garbage weight %.3f >= source %d weight %.3f", garbageW, p, m.DrugWeights[p])
		}
	}
	auc := AUC(ScoresOf(m), d.Assoc, train, held)
	if auc < 0.7 {
		t.Errorf("AUC with garbage source = %.3f, want >= 0.7", auc)
	}
}

func TestJMFRecoversHeldOutAssociations(t *testing.T) {
	d := testData(t)
	train, held := d.HoldOut(0.15, 1)
	m, err := Fit(train, drugSims(d), disSims(d), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	auc := AUC(ScoresOf(m), d.Assoc, train, held)
	if auc < 0.7 {
		t.Errorf("JMF AUC = %.3f, want >= 0.7", auc)
	}
}

// TestJMFBeatsBaselines is the shape of Fig 9 / the paper's central
// analytics claim: integrating multiple sources beats GBA and
// single-source MF.
func TestJMFBeatsBaselines(t *testing.T) {
	d := testData(t)
	train, held := d.HoldOut(0.15, 1)

	jm, err := Fit(train, drugSims(d), disSims(d), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	jmfAUC := AUC(ScoresOf(jm), d.Assoc, train, held)

	gba, err := GBA(train, d.DrugSim[kb.DrugChemical])
	if err != nil {
		t.Fatal(err)
	}
	gbaAUC := AUC(gba, d.Assoc, train, held)

	mf, err := SingleSourceMF(train, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	mfAUC := AUC(ScoresOf(mf), d.Assoc, train, held)

	t.Logf("AUC: JMF=%.3f GBA=%.3f MF=%.3f", jmfAUC, gbaAUC, mfAUC)
	if jmfAUC <= gbaAUC {
		t.Errorf("JMF (%.3f) did not beat GBA (%.3f)", jmfAUC, gbaAUC)
	}
	if jmfAUC <= mfAUC {
		t.Errorf("JMF (%.3f) did not beat single-source MF (%.3f)", jmfAUC, mfAUC)
	}
}

func TestTopDiseasesExcludesKnown(t *testing.T) {
	d := testData(t)
	train, _ := d.HoldOut(0.1, 1)
	m, err := Fit(train, drugSims(d), disSims(d), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	top := m.TopDiseases(0, train, 10)
	if len(top) != 10 {
		t.Fatalf("top = %d entries", len(top))
	}
	for _, j := range top {
		if train[0][j] > 0 {
			t.Errorf("known association %d suggested as new", j)
		}
	}
}

func TestGroupsCoverFactors(t *testing.T) {
	d := testData(t)
	train, _ := d.HoldOut(0.1, 1)
	m, err := Fit(train, drugSims(d), disSims(d), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	dg := m.DrugGroups()
	if len(dg) != len(d.DrugIDs) {
		t.Fatalf("drug groups = %d", len(dg))
	}
	for _, g := range dg {
		if g < 0 || g >= quickConfig().Rank {
			t.Fatalf("group %d out of range", g)
		}
	}
	if len(m.DiseaseGroups()) != len(d.DisIDs) {
		t.Fatal("disease groups wrong length")
	}
}

func TestGBAValidation(t *testing.T) {
	if _, err := GBA(nil, nil); !errors.Is(err, ErrInput) {
		t.Errorf("nil input: %v", err)
	}
	if _, err := GBA([][]float64{{1}}, [][]float64{{1}, {1}}); !errors.Is(err, ErrInput) {
		t.Errorf("misaligned sim: %v", err)
	}
}

func TestAUCEdgeCases(t *testing.T) {
	truth := [][]float64{{1, 0}, {0, 0}}
	train := [][]float64{{0, 0}, {0, 0}}
	scores := [][]float64{{0.9, 0.1}, {0.2, 0.3}}
	held := [][2]int{{0, 0}}
	auc := AUC(scores, truth, train, held)
	if auc != 1.0 {
		t.Errorf("perfect ranking AUC = %f", auc)
	}
	// Inverted scores give AUC 0.
	bad := [][]float64{{0.0, 0.5}, {0.6, 0.7}}
	if got := AUC(bad, truth, train, held); got != 0 {
		t.Errorf("worst ranking AUC = %f", got)
	}
	// No held-out positives.
	if got := AUC(scores, truth, train, nil); got != 0 {
		t.Errorf("no positives AUC = %f", got)
	}
	// Ties get 0.5.
	flat := [][]float64{{0.5, 0.5}, {0.5, 0.5}}
	if got := AUC(flat, truth, train, held); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("all-tied AUC = %f, want 0.5", got)
	}
}

func TestPrecisionAtK(t *testing.T) {
	truth := [][]float64{{1, 1}, {0, 0}}
	train := [][]float64{{1, 0}, {0, 0}} // (0,1) held out
	held := [][2]int{{0, 1}}
	scores := [][]float64{{0, 0.9}, {0.1, 0.2}}
	if got := PrecisionAtK(scores, truth, train, held, 1); got != 1.0 {
		t.Errorf("P@1 = %f", got)
	}
	if got := PrecisionAtK(scores, truth, train, held, 3); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("P@3 = %f", got)
	}
	if got := PrecisionAtK(scores, truth, train, held, 0); got != 0 {
		t.Errorf("P@0 = %f", got)
	}
}
