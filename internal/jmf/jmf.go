// Package jmf implements Joint Matrix Factorization for drug
// repositioning (§V-A, Fig 9; Zhang–Wang–Hu, AMIA 2014): a constrained
// non-convex optimization that integrates a known drug–disease
// association matrix R with multiple drug similarity networks S_p
// (chemical structure, target protein, side effect) and disease
// similarity networks T_q (phenotype, ontology, disease gene):
//
//	min_{F,G≥0, ω,μ∈Δ}  ‖R − FGᵀ‖² + α Σ_p ω_p^r ‖S_p − FFᵀ‖²
//	                               + β Σ_q μ_q^r ‖T_q − GGᵀ‖²
//
// solved by multiplicative updates on the nonnegative factors F, G and
// closed-form simplex updates on the source weights ω, μ. The learned
// weights are the paper's "interpretable importance of different
// information sources"; FGᵀ scores unobserved (drug, disease) pairs;
// and the dominant factor of each row gives the by-product drug/disease
// groups.
//
// Baselines for experiment E9 live in baselines.go: Guilt-by-Association
// and single-source matrix factorization (α=β=0).
package jmf

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"healthcloud/internal/matrix"
)

// Config tunes the optimization.
type Config struct {
	Rank       int     // latent dimension k
	Alpha      float64 // drug-similarity weight
	Beta       float64 // disease-similarity weight
	WeightExp  float64 // r > 1; sharpness of source weighting
	Iterations int
	Tol        float64 // stop when max factor change < Tol
	Seed       int64
}

// DefaultConfig returns the settings used in the examples and benches.
// Alpha/Beta are per-entry coefficients (the similarity blocks are
// normalized by entry count inside Fit), so 2 means "a similarity entry
// matters about twice as much as an association entry" before the ω^r
// simplex weighting splits it across sources.
func DefaultConfig() Config {
	return Config{Rank: 14, Alpha: 2, Beta: 2, WeightExp: 2, Iterations: 200, Tol: 1e-4, Seed: 1}
}

// Model is a fitted JMF instance.
type Model struct {
	F, G          *matrix.Matrix // drug and disease factors
	DrugWeights   []float64      // ω, aligned with the input source order
	DiseaseWeight []float64      // μ
	Objective     []float64      // objective value per iteration
	cfg           Config
}

// ErrInput reports invalid inputs.
var ErrInput = errors.New("jmf: invalid input")

const eps = 1e-12

// Fit runs JMF on the training association matrix R (drugs×diseases)
// with drug similarity sources S and disease similarity sources T.
func Fit(R [][]float64, S, T [][][]float64, cfg Config) (*Model, error) {
	if cfg.Rank <= 0 || cfg.Iterations <= 0 {
		return nil, fmt.Errorf("%w: rank and iterations must be positive", ErrInput)
	}
	if cfg.WeightExp <= 1 {
		return nil, fmt.Errorf("%w: weight exponent must exceed 1", ErrInput)
	}
	Rm, err := matrix.FromRows(R)
	if err != nil {
		return nil, fmt.Errorf("%w: R: %v", ErrInput, err)
	}
	n, m := Rm.Rows, Rm.Cols
	Sm := make([]*matrix.Matrix, len(S))
	for p, s := range S {
		if Sm[p], err = matrix.FromRows(s); err != nil {
			return nil, fmt.Errorf("%w: S[%d]: %v", ErrInput, p, err)
		}
		if Sm[p].Rows != n || Sm[p].Cols != n {
			return nil, fmt.Errorf("%w: S[%d] must be %dx%d", ErrInput, p, n, n)
		}
	}
	Tm := make([]*matrix.Matrix, len(T))
	for q, t := range T {
		if Tm[q], err = matrix.FromRows(t); err != nil {
			return nil, fmt.Errorf("%w: T[%d]: %v", ErrInput, q, err)
		}
		if Tm[q].Rows != m || Tm[q].Cols != m {
			return nil, fmt.Errorf("%w: T[%d] must be %dx%d", ErrInput, q, m, m)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	F := matrix.Random(n, cfg.Rank, 0.1, rng)
	G := matrix.Random(m, cfg.Rank, 0.1, rng)
	// Per-entry normalization: the R block has n·m residuals while each
	// similarity block has n² (or m²). Scaling the similarity coefficients
	// by the entry-count ratio makes Alpha/Beta express a per-entry
	// trade-off that transfers across dataset sizes.
	drugScale := float64(n) * float64(m) / (float64(n) * float64(n))
	disScale := float64(n) * float64(m) / (float64(m) * float64(m))
	// Source weights are computed once, against the association-implied
	// similarity (RRᵀ co-association for drugs, RᵀR for diseases). An
	// alternating weight update that scores sources by their fit to the
	// current factors has a runaway failure mode: high-rank factors can
	// overfit an information-free source, inflating its apparent
	// agreement and dragging the optimization toward noise. Anchoring the
	// weights to the observed data keeps them meaningful ("interpretable
	// importance") and the optimization stable.
	omega := anchoredWeights(Sm, coAssociation(Rm, false), cfg.WeightExp)
	mu := anchoredWeights(Tm, coAssociation(Rm, true), cfg.WeightExp)
	model := &Model{cfg: cfg}

	for it := 0; it < cfg.Iterations; it++ {
		prevF := F.Clone()

		// --- Update F ---
		// numerator: R G + 2α Σ ω_p^r S_p F ; denominator: F GᵀG + 2α Σ ω_p^r F FᵀF
		RG, _ := matrix.Mul(Rm, G)
		GtG, _ := matrix.Mul(G.T(), G)
		FGtG, _ := matrix.Mul(F, GtG)
		num := RG
		den := FGtG
		if len(Sm) > 0 && cfg.Alpha > 0 {
			FtF, _ := matrix.Mul(F.T(), F)
			FFtF, _ := matrix.Mul(F, FtF)
			for p, Sp := range Sm {
				w := 2 * cfg.Alpha * drugScale * math.Pow(omega[p], cfg.WeightExp)
				SpF, _ := matrix.Mul(Sp, F)
				num, _ = matrix.Add(num, SpF.Scale(w))
				den, _ = matrix.Add(den, FFtF.Clone().Scale(w))
			}
		}
		applyMultiplicative(F, num, den)

		// --- Update G ---
		RtF, _ := matrix.Mul(Rm.T(), F)
		FtF2, _ := matrix.Mul(F.T(), F)
		GFtF, _ := matrix.Mul(G, FtF2)
		numG := RtF
		denG := GFtF
		if len(Tm) > 0 && cfg.Beta > 0 {
			GtG2, _ := matrix.Mul(G.T(), G)
			GGtG, _ := matrix.Mul(G, GtG2)
			for q, Tq := range Tm {
				w := 2 * cfg.Beta * disScale * math.Pow(mu[q], cfg.WeightExp)
				TqG, _ := matrix.Mul(Tq, G)
				numG, _ = matrix.Add(numG, TqG.Scale(w))
				denG, _ = matrix.Add(denG, GGtG.Clone().Scale(w))
			}
		}
		applyMultiplicative(G, numG, denG)

		model.Objective = append(model.Objective, objective(Rm, Sm, Tm, F, G, omega, mu, cfg))
		if d, _ := matrix.MaxAbsDiff(F, prevF); d < cfg.Tol && it > 5 {
			break
		}
	}
	model.F, model.G = F, G
	model.DrugWeights, model.DiseaseWeight = omega, mu
	return model, nil
}

// Score returns the predicted association strength for (drug i, disease j).
func (m *Model) Score(i, j int) float64 {
	v, _ := matrix.RowDot(m.F, i, m.G, j)
	return v
}

// ScoreMatrix returns the full FGᵀ prediction matrix.
func (m *Model) ScoreMatrix() *matrix.Matrix {
	out, _ := matrix.Mul(m.F, m.G.T())
	return out
}

// TopDiseases returns the k highest-scoring diseases for a drug,
// excluding those already known in the given training matrix —
// repositioning-hypothesis generation.
func (m *Model) TopDiseases(drug int, train [][]float64, k int) []int {
	type cand struct {
		j int
		v float64
	}
	var cands []cand
	for j := 0; j < m.G.Rows; j++ {
		if train[drug][j] > 0 {
			continue
		}
		cands = append(cands, cand{j, m.Score(drug, j)})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].v > cands[b].v })
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].j
	}
	return out
}

// DrugGroups assigns each drug to its dominant latent factor — the
// "drug and disease groups" by-product the paper highlights.
func (m *Model) DrugGroups() []int { return argmaxRows(m.F) }

// DiseaseGroups assigns each disease to its dominant latent factor.
func (m *Model) DiseaseGroups() []int { return argmaxRows(m.G) }

func argmaxRows(f *matrix.Matrix) []int {
	out := make([]int, f.Rows)
	for i := 0; i < f.Rows; i++ {
		best, bestV := 0, math.Inf(-1)
		for j := 0; j < f.Cols; j++ {
			if v := f.At(i, j); v > bestV {
				best, bestV = j, v
			}
		}
		out[i] = best
	}
	return out
}

// applyMultiplicative performs X ← X ⊙ num ⊘ den with an epsilon floor.
func applyMultiplicative(X, num, den *matrix.Matrix) {
	for i := range X.Data {
		X.Data[i] *= num.Data[i] / (den.Data[i] + eps)
		if X.Data[i] < eps {
			X.Data[i] = eps
		}
	}
}

// coAssociation returns the association-implied similarity: RRᵀ over
// drugs (transpose=false) or RᵀR over diseases (transpose=true).
func coAssociation(R *matrix.Matrix, transpose bool) *matrix.Matrix {
	if transpose {
		out, _ := matrix.Mul(R.T(), R)
		return out
	}
	out, _ := matrix.Mul(R, R.T())
	return out
}

// anchoredWeights assigns each source a simplex weight from its
// agreement with the association-implied similarity: w_p ∝
// max(ρ_p, ε)^{1/(r−1)}, where ρ_p is the Pearson correlation between
// S_p and the co-association matrix over off-diagonal entries. The
// weights measure how predictive a source is of observed co-association;
// an information-free source correlates ≈0 and is effectively ignored.
func anchoredWeights(sources []*matrix.Matrix, anchor *matrix.Matrix, r float64) []float64 {
	if len(sources) == 0 {
		return nil
	}
	w := make([]float64, len(sources))
	sum := 0.0
	for p, Sp := range sources {
		rho := offDiagCorrelation(Sp, anchor)
		if rho < eps {
			rho = eps
		}
		w[p] = math.Pow(rho, 1/(r-1))
		sum += w[p]
	}
	for p := range w {
		w[p] /= sum
	}
	return w
}

// offDiagCorrelation computes the Pearson correlation between two
// symmetric matrices over their off-diagonal entries.
func offDiagCorrelation(a, b *matrix.Matrix) float64 {
	n := a.Rows
	var meanA, meanB float64
	count := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			meanA += a.At(i, j)
			meanB += b.At(i, j)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	meanA /= count
	meanB /= count
	var cov, varA, varB float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			da := a.At(i, j) - meanA
			db := b.At(i, j) - meanB
			cov += da * db
			varA += da * da
			varB += db * db
		}
	}
	if varA < eps || varB < eps {
		return 0
	}
	return cov / math.Sqrt(varA*varB)
}

func objective(R *matrix.Matrix, S, T []*matrix.Matrix, F, G *matrix.Matrix, omega, mu []float64, cfg Config) float64 {
	FGt, _ := matrix.Mul(F, G.T())
	diff, _ := matrix.Sub(R, FGt)
	obj := diff.Frobenius()
	obj = obj * obj
	n, m := float64(R.Rows), float64(R.Cols)
	if len(S) > 0 && cfg.Alpha > 0 {
		FFt, _ := matrix.Mul(F, F.T())
		for p, Sp := range S {
			d, _ := matrix.Sub(Sp, FFt)
			e := d.Frobenius()
			obj += cfg.Alpha * (m / n) * math.Pow(omega[p], cfg.WeightExp) * e * e
		}
	}
	if len(T) > 0 && cfg.Beta > 0 {
		GGt, _ := matrix.Mul(G, G.T())
		for q, Tq := range T {
			d, _ := matrix.Sub(Tq, GGt)
			e := d.Frobenius()
			obj += cfg.Beta * (n / m) * math.Pow(mu[q], cfg.WeightExp) * e * e
		}
	}
	return obj
}
