package jmf

import (
	"fmt"
	"sort"
)

// Baselines for experiment E9, mirroring the prior art §V-A surveys.

// GBA implements Guilt-by-Association (Chiang & Butte): a drug's score
// for a disease is the similarity-weighted vote of drugs already
// associated with it, using a single drug-similarity source.
//
//	score(i, j) = Σ_{i'≠i} sim(i, i') · R[i'][j]  /  Σ_{i'≠i} sim(i, i')
func GBA(R [][]float64, drugSim [][]float64) ([][]float64, error) {
	n := len(R)
	if n == 0 || len(drugSim) != n {
		return nil, fmt.Errorf("%w: GBA needs square sim aligned with R", ErrInput)
	}
	m := len(R[0])
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]float64, m)
		var simSum float64
		for ip := 0; ip < n; ip++ {
			if ip != i {
				simSum += drugSim[i][ip]
			}
		}
		if simSum == 0 {
			continue
		}
		for j := 0; j < m; j++ {
			var s float64
			for ip := 0; ip < n; ip++ {
				if ip == i {
					continue
				}
				s += drugSim[i][ip] * R[ip][j]
			}
			out[i][j] = s / simSum
		}
	}
	return out, nil
}

// SingleSourceMF is plain nonnegative matrix factorization of R with no
// side information — the JMF machinery with α=β=0.
func SingleSourceMF(R [][]float64, cfg Config) (*Model, error) {
	cfg.Alpha, cfg.Beta = 0, 0
	return Fit(R, nil, nil, cfg)
}

// Evaluation ------------------------------------------------------------

// AUC computes the area under the ROC curve for held-out positives
// against all remaining zero entries of the ground truth. scores is the
// prediction matrix; truth the full association matrix; train the
// training matrix (entries positive in train are excluded from ranking).
func AUC(scores, truth, train [][]float64, heldOut [][2]int) float64 {
	held := make(map[[2]int]bool, len(heldOut))
	for _, p := range heldOut {
		held[p] = true
	}
	var pos, neg []float64
	for i := range truth {
		for j := range truth[i] {
			if train[i][j] > 0 {
				continue // known during training: not rankable
			}
			if held[[2]int{i, j}] {
				pos = append(pos, scores[i][j])
			} else if truth[i][j] == 0 {
				neg = append(neg, scores[i][j])
			}
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return 0
	}
	// Rank-sum AUC.
	type sample struct {
		v   float64
		pos bool
	}
	all := make([]sample, 0, len(pos)+len(neg))
	for _, v := range pos {
		all = append(all, sample{v, true})
	}
	for _, v := range neg {
		all = append(all, sample{v, false})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].v < all[b].v })
	// Handle ties with average ranks.
	ranks := make([]float64, len(all))
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		i = j
	}
	var rankSum float64
	for i, s := range all {
		if s.pos {
			rankSum += ranks[i]
		}
	}
	nP, nN := float64(len(pos)), float64(len(neg))
	return (rankSum - nP*(nP+1)/2) / (nP * nN)
}

// PrecisionAtK returns the fraction of the top-k unobserved predictions
// (global ranking) that are held-out true positives.
func PrecisionAtK(scores, truth, train [][]float64, heldOut [][2]int, k int) float64 {
	held := make(map[[2]int]bool, len(heldOut))
	for _, p := range heldOut {
		held[p] = true
	}
	type cand struct {
		i, j int
		v    float64
	}
	var cands []cand
	for i := range truth {
		for j := range truth[i] {
			if train[i][j] > 0 {
				continue
			}
			cands = append(cands, cand{i, j, scores[i][j]})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].v > cands[b].v })
	if k > len(cands) {
		k = len(cands)
	}
	if k == 0 {
		return 0
	}
	hits := 0
	for _, c := range cands[:k] {
		if held[[2]int{c.i, c.j}] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// ScoresOf converts a model's prediction matrix to [][]float64 for the
// shared evaluators.
func ScoresOf(m *Model) [][]float64 {
	sm := m.ScoreMatrix()
	out := make([][]float64, sm.Rows)
	for i := 0; i < sm.Rows; i++ {
		out[i] = make([]float64, sm.Cols)
		for j := 0; j < sm.Cols; j++ {
			out[i][j] = sm.At(i, j)
		}
	}
	return out
}
