package consensus

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

const testTimeout = 5 * time.Second

func newTestCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c := NewCluster(n, Config{})
	t.Cleanup(c.Stop)
	return c
}

func TestSingleNodeBecomesLeader(t *testing.T) {
	c := newTestCluster(t, 1)
	l, err := c.WaitForLeader(testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if l.ID() != "node-0" {
		t.Errorf("leader = %s", l.ID())
	}
}

func TestThreeNodeElection(t *testing.T) {
	c := newTestCluster(t, 3)
	if _, err := c.WaitForLeader(testTimeout); err != nil {
		t.Fatal(err)
	}
	// Exactly one leader in the top term.
	leaders := 0
	top := uint64(0)
	for _, n := range c.Nodes {
		if n.Term() > top {
			top = n.Term()
		}
	}
	for _, n := range c.Nodes {
		if n.Role() == Leader && n.Term() == top {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("leaders in top term = %d, want 1", leaders)
	}
}

func TestProposeCommitsOnMajority(t *testing.T) {
	c := newTestCluster(t, 3)
	idx, err := c.ProposeAndWait([]byte("tx-1"), testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Errorf("first committed index = %d, want 1", idx)
	}
	// Every node eventually applies the entry.
	for _, n := range c.Nodes {
		select {
		case com := <-n.Apply():
			if !bytes.Equal(com.Entry.Data, []byte("tx-1")) {
				t.Errorf("%s applied %q", n.ID(), com.Entry.Data)
			}
		case <-time.After(testTimeout):
			t.Fatalf("%s never applied the entry", n.ID())
		}
	}
}

func TestProposeOnFollowerRejected(t *testing.T) {
	c := newTestCluster(t, 3)
	l, err := c.WaitForLeader(testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		if n == l {
			continue
		}
		if _, _, err := n.Propose([]byte("x")); err != ErrNotLeader {
			t.Errorf("%s Propose: got %v, want ErrNotLeader", n.ID(), err)
		}
	}
}

func TestOrderedDelivery(t *testing.T) {
	c := newTestCluster(t, 3)
	const total = 20
	for i := 0; i < total; i++ {
		if _, err := c.ProposeAndWait([]byte(fmt.Sprintf("tx-%d", i)), testTimeout); err != nil {
			t.Fatalf("proposal %d: %v", i, err)
		}
	}
	for _, n := range c.Nodes {
		for i := 0; i < total; i++ {
			select {
			case com := <-n.Apply():
				want := fmt.Sprintf("tx-%d", i)
				if string(com.Entry.Data) != want {
					t.Fatalf("%s applied %q at position %d, want %q", n.ID(), com.Entry.Data, i, want)
				}
			case <-time.After(testTimeout):
				t.Fatalf("%s: missing entry %d", n.ID(), i)
			}
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	c := newTestCluster(t, 5)
	l, err := c.WaitForLeader(testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProposeAndWait([]byte("before"), testTimeout); err != nil {
		t.Fatal(err)
	}
	// Kill the leader's connectivity.
	c.Net.Isolate(l.ID())
	// A new leader must emerge among the rest.
	deadline := time.Now().Add(testTimeout)
	var newLeader *Node
	for time.Now().Before(deadline) {
		for _, n := range c.Nodes {
			if n != l && n.Role() == Leader && n.Term() > l.Term() {
				newLeader = n
				break
			}
		}
		if newLeader != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if newLeader == nil {
		t.Fatal("no new leader after isolating the old one")
	}
	// The cluster keeps making progress.
	idx, _, err := newLeader.Propose([]byte("after"))
	if err != nil {
		t.Fatalf("new leader rejected proposal: %v", err)
	}
	deadline = time.Now().Add(testTimeout)
	for newLeader.CommitIndex() < idx && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if newLeader.CommitIndex() < idx {
		t.Fatal("proposal after failover never committed")
	}
}

func TestMinorityPartitionCannotCommit(t *testing.T) {
	c := newTestCluster(t, 5)
	l, err := c.WaitForLeader(testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	// Put the leader alone with one follower (minority).
	var minority, majority []string
	minority = append(minority, l.ID())
	for _, n := range c.Nodes {
		if n == l {
			continue
		}
		if len(minority) < 2 {
			minority = append(minority, n.ID())
		} else {
			majority = append(majority, n.ID())
		}
	}
	c.Net.Partition(minority, majority)
	// Old leader can still accept a proposal but must not commit it.
	idx, _, err := l.Propose([]byte("doomed"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	time.Sleep(300 * time.Millisecond)
	if l.CommitIndex() >= idx {
		t.Fatal("minority leader committed an entry — safety violation")
	}
	// Heal; the entry from the stale term must not survive if the majority
	// elected a new leader and moved on.
	c.Net.Heal()
	if _, err := c.ProposeAndWait([]byte("post-heal"), testTimeout); err != nil {
		t.Fatalf("post-heal proposal: %v", err)
	}
}

// TestLogConsistencyAfterHeal is the Raft log-matching property under a
// partition/heal cycle: all nodes converge to identical logs.
func TestLogConsistencyAfterHeal(t *testing.T) {
	c := newTestCluster(t, 5)
	if _, err := c.ProposeAndWait([]byte("a"), testTimeout); err != nil {
		t.Fatal(err)
	}
	l := c.Leader()
	if l == nil {
		t.Fatal("no leader")
	}
	c.Net.Isolate(l.ID())
	// Propose into the isolated stale leader: these must eventually vanish.
	l.Propose([]byte("stale-1"))
	l.Propose([]byte("stale-2"))
	// Majority continues.
	if _, err := c.ProposeAndWait([]byte("b"), testTimeout); err != nil {
		t.Fatal(err)
	}
	c.Net.Heal()
	if _, err := c.ProposeAndWait([]byte("c"), testTimeout); err != nil {
		t.Fatal(err)
	}
	// Wait for convergence: all nodes share the committed prefix a,b,c.
	deadline := time.Now().Add(testTimeout)
	for time.Now().Before(deadline) {
		if logsConverged(c, 3) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !logsConverged(c, 3) {
		for _, n := range c.Nodes {
			t.Logf("%s: %d entries, commit=%d", n.ID(), len(n.LogEntries()), n.CommitIndex())
		}
		t.Fatal("logs did not converge after heal")
	}
	for _, n := range c.Nodes {
		entries := n.LogEntries()
		got := []string{string(entries[0].Data), string(entries[1].Data), string(entries[2].Data)}
		want := []string{"a", "b", "c"}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s log[%d] = %q, want %q", n.ID(), i, got[i], want[i])
			}
		}
	}
}

func logsConverged(c *Cluster, wantLen int) bool {
	var ref []Entry
	for _, n := range c.Nodes {
		if n.CommitIndex() < uint64(wantLen) {
			return false
		}
		entries := n.LogEntries()
		if len(entries) < wantLen {
			return false
		}
		entries = entries[:wantLen]
		if ref == nil {
			ref = entries
			continue
		}
		for i := range ref {
			if entries[i].Term != ref[i].Term || !bytes.Equal(entries[i].Data, ref[i].Data) {
				return false
			}
		}
	}
	return true
}

func TestCommitUnderMessageLoss(t *testing.T) {
	c := newTestCluster(t, 3)
	c.Net.SetDropRate(0.2)
	for i := 0; i < 5; i++ {
		if _, err := c.ProposeAndWait([]byte(fmt.Sprintf("lossy-%d", i)), testTimeout); err != nil {
			t.Fatalf("proposal %d under 20%% loss: %v", i, err)
		}
	}
}

func TestCommitUnderDelay(t *testing.T) {
	c := newTestCluster(t, 3)
	c.Net.SetDelay(5 * time.Millisecond)
	if _, err := c.ProposeAndWait([]byte("slow"), testTimeout); err != nil {
		t.Fatalf("proposal under delay: %v", err)
	}
}

func TestStoppedNodeRejectsPropose(t *testing.T) {
	net := NewNetwork()
	n := NewNode("solo", []string{"solo"}, net, Config{})
	n.Start()
	deadline := time.Now().Add(testTimeout)
	for n.Role() != Leader && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	net.Stop()
	n.Stop()
	if _, _, err := n.Propose([]byte("late")); err != ErrStopped {
		t.Errorf("got %v, want ErrStopped", err)
	}
}

func TestRoleString(t *testing.T) {
	for r, want := range map[Role]string{Follower: "follower", Candidate: "candidate", Leader: "leader", Role(9): "role(9)"} {
		if r.String() != want {
			t.Errorf("Role(%d).String() = %q, want %q", int(r), r.String(), want)
		}
	}
}
