package consensus

import (
	"sync"
	"time"

	"healthcloud/internal/faultinject"
)

// FaultSend is the fault point consulted per message send: an injected
// error drops the message, injected latency delays its delivery.
const FaultSend = "consensus.transport.send"

// Network is an in-process message fabric between Raft nodes with
// injectable failures: per-link drops, delays, and partitions. It stands
// in for the datacenter network of the paper's infrastructure cloud and
// gives failure-injection tests a deterministic handle.
type Network struct {
	mu       sync.RWMutex
	inboxes  map[string]chan<- message
	cut      map[[2]string]bool // directed links severed
	dropRate float64            // global probability of dropping any message
	delay    time.Duration      // fixed latency applied to every delivery
	faults   *faultinject.Registry
	rngState uint64
	stopped  bool
}

// NewNetwork creates a connected, lossless network.
func NewNetwork() *Network {
	return &Network{
		inboxes:  make(map[string]chan<- message),
		cut:      make(map[[2]string]bool),
		rngState: 0x9E3779B97F4A7C15,
	}
}

func (w *Network) register(id string, inbox chan<- message) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.inboxes[id] = inbox
}

// SetFaults installs a fault-injection registry consulted at FaultSend
// for every delivery (nil disables). Injected errors drop the message —
// Raft tolerates loss — giving chaos experiments a seedable loss knob
// independent of SetDropRate.
func (w *Network) SetFaults(r *faultinject.Registry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.faults = r
}

// SetDelay applies a fixed delivery delay to all messages.
func (w *Network) SetDelay(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.delay = d
}

// SetDropRate drops each message independently with probability p.
func (w *Network) SetDropRate(p float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.dropRate = p
}

// Partition severs all links between the two groups (both directions).
// Nodes within a group still communicate.
func (w *Network) Partition(groupA, groupB []string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, a := range groupA {
		for _, b := range groupB {
			w.cut[[2]string{a, b}] = true
			w.cut[[2]string{b, a}] = true
		}
	}
}

// Heal removes all partitions.
func (w *Network) Heal() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.cut = make(map[[2]string]bool)
}

// Isolate cuts a single node off from everyone else.
func (w *Network) Isolate(id string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for other := range w.inboxes {
		if other == id {
			continue
		}
		w.cut[[2]string{id, other}] = true
		w.cut[[2]string{other, id}] = true
	}
}

// Stop silences the network; subsequent sends are discarded. Call before
// stopping nodes so in-flight goroutine deliveries don't block.
func (w *Network) Stop() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stopped = true
}

// send delivers asynchronously, honoring partitions, drops, and delay.
func (w *Network) send(from, to string, m message) {
	w.mu.Lock()
	if w.stopped || w.cut[[2]string{from, to}] {
		w.mu.Unlock()
		return
	}
	if w.dropRate > 0 {
		// xorshift64* — cheap deterministic PRNG under the lock.
		w.rngState ^= w.rngState << 13
		w.rngState ^= w.rngState >> 7
		w.rngState ^= w.rngState << 17
		if float64(w.rngState%1_000_000)/1_000_000 < w.dropRate {
			w.mu.Unlock()
			return
		}
	}
	inbox, ok := w.inboxes[to]
	delay := w.delay
	faults := w.faults
	w.mu.Unlock()
	if !ok {
		return
	}
	deliver := func() {
		select {
		case inbox <- m:
		default:
			// Receiver's inbox is full: the message is lost, exactly as a
			// saturated network would lose it. Raft tolerates message loss.
		}
	}
	if faults != nil {
		// Off the caller's goroutine: senders hold node locks, and the
		// fault point may inject latency (sleep) before delivery.
		go func() {
			if faults.Check(FaultSend) != nil {
				return // injected error = message lost
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			deliver()
		}()
		return
	}
	if delay > 0 {
		time.AfterFunc(delay, deliver)
		return
	}
	deliver()
}
