package consensus

import (
	"errors"
	"fmt"
	"time"

	"healthcloud/internal/telemetry"
)

// Cluster bundles a set of nodes on one network — the deployment unit the
// blockchain ordering service runs as.
type Cluster struct {
	Net   *Network
	Nodes []*Node
	met   *clusterMetrics
}

// clusterMetrics instruments the ordering path; nil disables it.
type clusterMetrics struct {
	proposals, retries, failures *telemetry.Counter
	propose                      *telemetry.Histogram
}

// SetTelemetry attaches ordering metrics to the registry (nil disables).
func (c *Cluster) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		c.met = nil
		return
	}
	c.met = &clusterMetrics{
		proposals: reg.Counter("consensus_proposals_total"),
		retries:   reg.Counter("consensus_propose_retries_total"),
		failures:  reg.Counter("consensus_propose_failures_total"),
		propose:   reg.Histogram("consensus_propose_seconds"),
	}
}

// NewCluster builds and starts n nodes named node-0..node-{n-1}.
func NewCluster(n int, cfg Config) *Cluster {
	net := NewNetwork()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%d", i)
	}
	c := &Cluster{Net: net}
	for i, id := range ids {
		nodeCfg := cfg
		if nodeCfg.Seed == 0 {
			nodeCfg.Seed = int64(i + 1)
		}
		c.Nodes = append(c.Nodes, NewNode(id, ids, net, nodeCfg))
	}
	for _, nd := range c.Nodes {
		nd.Start()
	}
	return c
}

// Stop shuts down the network and every node.
func (c *Cluster) Stop() {
	c.Net.Stop()
	for _, n := range c.Nodes {
		n.Stop()
	}
}

// Leader returns the current leader if exactly one node in the highest
// term believes it is leader, else nil.
func (c *Cluster) Leader() *Node {
	var leader *Node
	var topTerm uint64
	for _, n := range c.Nodes {
		if t := n.Term(); t > topTerm {
			topTerm = t
		}
	}
	for _, n := range c.Nodes {
		if n.Role() == Leader && n.Term() == topTerm {
			if leader != nil {
				return nil // split claim, not settled yet
			}
			leader = n
		}
	}
	return leader
}

// WaitForLeader blocks until a leader emerges or the timeout passes.
func (c *Cluster) WaitForLeader(timeout time.Duration) (*Node, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if l := c.Leader(); l != nil {
			return l, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil, errors.New("consensus: no leader elected within timeout")
}

// ProposeAndWait submits data through the current leader and waits until
// a majority has committed it (observed via the leader's commit index).
// Delivery is at-least-once: if an attempt's outcome cannot be confirmed
// (for example the chosen leader turns out to be a deposed node on the
// wrong side of a partition), the proposal is retried through the next
// leader, so callers that need exactly-once must deduplicate by content —
// the blockchain layer does so by transaction ID.
func (c *Cluster) ProposeAndWait(data []byte, timeout time.Duration) (uint64, error) {
	var start time.Time
	if c.met != nil {
		c.met.proposals.Inc()
		start = c.met.propose.Start()
	}
	idx, err := c.proposeAndWait(data, timeout)
	if c.met != nil {
		c.met.propose.ObserveSince(start)
		if err != nil {
			c.met.failures.Inc()
		}
	}
	return idx, err
}

func (c *Cluster) proposeAndWait(data []byte, timeout time.Duration) (uint64, error) {
	deadline := time.Now().Add(timeout)
	attempts := 0
	for time.Now().Before(deadline) {
		l := c.Leader()
		if l == nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		attempts++
		if c.met != nil && attempts > 1 {
			c.met.retries.Inc()
		}
		idx, term, err := l.Propose(data)
		if errors.Is(err, ErrNotLeader) {
			continue // leadership moved between Leader() and Propose
		}
		if err != nil {
			return 0, err
		}
		// Wait for commit, but only briefly: a stale leader stranded in a
		// minority partition would otherwise trap us until the full
		// deadline. If the attempt can't be confirmed in time, re-evaluate
		// leadership and retry.
		attemptDeadline := time.Now().Add(300 * time.Millisecond)
		for time.Now().Before(deadline) && time.Now().Before(attemptDeadline) {
			if l.CommitIndex() >= idx {
				// Confirm the entry wasn't overwritten by a newer term.
				entries := l.LogEntries()
				if idx-1 < uint64(len(entries)) && entries[idx-1].Term == term {
					return idx, nil
				}
				break // overwritten: retry via the new leader
			}
			if l.Role() != Leader {
				break // deposed before commit: retry
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return 0, errors.New("consensus: proposal did not commit within timeout")
}
