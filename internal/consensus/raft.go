// Package consensus implements a Raft-style replicated log used as the
// ordering service of the platform's permissioned blockchain networks
// (§IV). The paper's ledgers are "permissioned blockchain system[s] such
// as Hyperledger"; Hyperledger Fabric orders transactions through a Raft
// ordering service, so this package provides the same substrate: leader
// election, log replication, and commit notification, over an in-process
// message network with injectable delays, drops, and partitions for
// failure testing.
package consensus

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Role is a node's current Raft role.
type Role int

// Raft roles.
const (
	Follower Role = iota + 1
	Candidate
	Leader
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Entry is one replicated log record.
type Entry struct {
	Term  uint64
	Index uint64
	Data  []byte
}

// Committed is delivered on a node's apply channel for each entry once it
// is known committed.
type Committed struct {
	Entry Entry
}

// Message kinds exchanged between nodes.
type msgKind int

const (
	msgRequestVote msgKind = iota + 1
	msgVoteReply
	msgAppendEntries
	msgAppendReply
)

// message is the single wire format between nodes.
type message struct {
	kind msgKind
	from string
	term uint64

	// RequestVote
	candidateID  string
	lastLogIndex uint64
	lastLogTerm  uint64

	// VoteReply
	voteGranted bool

	// AppendEntries
	prevLogIndex uint64
	prevLogTerm  uint64
	entries      []Entry
	leaderCommit uint64

	// AppendReply
	success    bool
	matchIndex uint64
}

// ErrNotLeader is returned by Propose on a non-leader node.
var ErrNotLeader = errors.New("consensus: not the leader")

// ErrStopped is returned when the node has shut down.
var ErrStopped = errors.New("consensus: node stopped")

// Config tunes a node. Zero fields get sensible test-speed defaults.
type Config struct {
	// ElectionTimeoutMin/Max bound the randomized election timeout.
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	// HeartbeatInterval is the leader's idle append cadence.
	HeartbeatInterval time.Duration
	// Seed seeds the node's private RNG for reproducible elections.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.ElectionTimeoutMin == 0 {
		c.ElectionTimeoutMin = 50 * time.Millisecond
	}
	if c.ElectionTimeoutMax == 0 {
		c.ElectionTimeoutMax = 100 * time.Millisecond
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 15 * time.Millisecond
	}
	return c
}

// Node is one Raft participant.
type Node struct {
	id    string
	peers []string // all cluster members including self
	net   *Network
	cfg   Config
	rng   *rand.Rand

	mu          sync.Mutex
	role        Role
	currentTerm uint64
	votedFor    string
	log         []Entry // log[0] is a sentinel at index 0
	commitIndex uint64
	lastApplied uint64
	nextIndex   map[string]uint64
	matchIndex  map[string]uint64
	votes       map[string]bool
	electionAt  time.Time

	applyCh chan Committed
	inbox   chan message
	stopCh  chan struct{}
	doneCh  chan struct{}
}

// NewNode creates a node attached to the network. Call Start to run it.
func NewNode(id string, peers []string, net *Network, cfg Config) *Node {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = int64(len(id)) * 7919
		for _, c := range id {
			seed = seed*31 + int64(c)
		}
	}
	n := &Node{
		id:         id,
		peers:      append([]string(nil), peers...),
		net:        net,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(seed)),
		role:       Follower,
		log:        []Entry{{}}, // sentinel
		nextIndex:  make(map[string]uint64),
		matchIndex: make(map[string]uint64),
		applyCh:    make(chan Committed, 1024),
		inbox:      make(chan message, 1024),
		stopCh:     make(chan struct{}),
		doneCh:     make(chan struct{}),
	}
	net.register(id, n.inbox)
	return n
}

// ID returns the node's identity.
func (n *Node) ID() string { return n.id }

// Apply returns the channel of committed entries, delivered in log order.
func (n *Node) Apply() <-chan Committed { return n.applyCh }

// Start launches the node's event loop.
func (n *Node) Start() {
	n.mu.Lock()
	n.resetElectionTimerLocked()
	n.mu.Unlock()
	go n.run()
}

// Stop shuts the node down and waits for its loop to exit.
func (n *Node) Stop() {
	select {
	case <-n.stopCh:
	default:
		close(n.stopCh)
	}
	<-n.doneCh
}

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Term returns the node's current term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.currentTerm
}

// CommitIndex returns the highest committed log index.
func (n *Node) CommitIndex() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commitIndex
}

// LogEntries returns a copy of the log (excluding the sentinel).
func (n *Node) LogEntries() []Entry {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Entry, len(n.log)-1)
	copy(out, n.log[1:])
	return out
}

// Propose appends data to the replicated log if this node is the leader.
// It returns the assigned index and term. Commitment is signaled later
// via Apply.
func (n *Node) Propose(data []byte) (index, term uint64, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case <-n.stopCh:
		return 0, 0, ErrStopped
	default:
	}
	if n.role != Leader {
		return 0, 0, ErrNotLeader
	}
	e := Entry{Term: n.currentTerm, Index: uint64(len(n.log)), Data: append([]byte(nil), data...)}
	n.log = append(n.log, e)
	n.matchIndex[n.id] = e.Index
	n.broadcastAppendLocked()
	return e.Index, e.Term, nil
}

func (n *Node) run() {
	// The run goroutine is the only sender on applyCh, so closing it here
	// is safe and lets downstream consumers (blockchain peers) terminate.
	defer close(n.doneCh)
	defer close(n.applyCh)
	ticker := time.NewTicker(n.cfg.HeartbeatInterval / 3)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case m := <-n.inbox:
			n.handle(m)
		case <-ticker.C:
			n.tick()
		}
	}
}

func (n *Node) tick() {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := time.Now()
	switch n.role {
	case Leader:
		n.broadcastAppendLocked()
	case Follower, Candidate:
		if now.After(n.electionAt) {
			n.startElectionLocked()
		}
	}
}

func (n *Node) resetElectionTimerLocked() {
	span := n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin
	d := n.cfg.ElectionTimeoutMin + time.Duration(n.rng.Int63n(int64(span)+1))
	n.electionAt = time.Now().Add(d)
}

func (n *Node) startElectionLocked() {
	n.role = Candidate
	n.currentTerm++
	n.votedFor = n.id
	n.votes = map[string]bool{n.id: true}
	n.resetElectionTimerLocked()
	last := n.log[len(n.log)-1]
	for _, p := range n.peers {
		if p == n.id {
			continue
		}
		n.net.send(n.id, p, message{
			kind: msgRequestVote, from: n.id, term: n.currentTerm,
			candidateID: n.id, lastLogIndex: last.Index, lastLogTerm: last.Term,
		})
	}
	// Single-node cluster wins immediately.
	if n.tallyLocked() {
		n.becomeLeaderLocked()
	}
}

func (n *Node) tallyLocked() bool {
	return len(n.votes) > len(n.peers)/2
}

func (n *Node) becomeLeaderLocked() {
	n.role = Leader
	for _, p := range n.peers {
		n.nextIndex[p] = uint64(len(n.log))
		n.matchIndex[p] = 0
	}
	n.matchIndex[n.id] = uint64(len(n.log)) - 1
	n.broadcastAppendLocked()
}

func (n *Node) stepDownLocked(term uint64) {
	n.currentTerm = term
	n.role = Follower
	n.votedFor = ""
	n.resetElectionTimerLocked()
}

func (n *Node) handle(m message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.term > n.currentTerm {
		n.stepDownLocked(m.term)
	}
	switch m.kind {
	case msgRequestVote:
		n.handleRequestVoteLocked(m)
	case msgVoteReply:
		n.handleVoteReplyLocked(m)
	case msgAppendEntries:
		n.handleAppendLocked(m)
	case msgAppendReply:
		n.handleAppendReplyLocked(m)
	}
}

func (n *Node) handleRequestVoteLocked(m message) {
	grant := false
	if m.term >= n.currentTerm && (n.votedFor == "" || n.votedFor == m.candidateID) {
		last := n.log[len(n.log)-1]
		upToDate := m.lastLogTerm > last.Term ||
			(m.lastLogTerm == last.Term && m.lastLogIndex >= last.Index)
		if upToDate {
			grant = true
			n.votedFor = m.candidateID
			n.resetElectionTimerLocked()
		}
	}
	n.net.send(n.id, m.from, message{
		kind: msgVoteReply, from: n.id, term: n.currentTerm, voteGranted: grant,
	})
}

func (n *Node) handleVoteReplyLocked(m message) {
	if n.role != Candidate || m.term != n.currentTerm || !m.voteGranted {
		return
	}
	n.votes[m.from] = true
	if n.tallyLocked() {
		n.becomeLeaderLocked()
	}
}

func (n *Node) handleAppendLocked(m message) {
	reply := message{kind: msgAppendReply, from: n.id, term: n.currentTerm}
	if m.term < n.currentTerm {
		n.net.send(n.id, m.from, reply)
		return
	}
	// Valid leader for this term.
	n.role = Follower
	n.resetElectionTimerLocked()
	// Log consistency check.
	if m.prevLogIndex >= uint64(len(n.log)) || n.log[m.prevLogIndex].Term != m.prevLogTerm {
		n.net.send(n.id, m.from, reply) // success=false
		return
	}
	// Append, truncating conflicts.
	for i, e := range m.entries {
		idx := m.prevLogIndex + uint64(i) + 1
		if idx < uint64(len(n.log)) {
			if n.log[idx].Term != e.Term {
				n.log = n.log[:idx]
				n.log = append(n.log, m.entries[i:]...)
				break
			}
			continue
		}
		n.log = append(n.log, m.entries[i:]...)
		break
	}
	lastNew := m.prevLogIndex + uint64(len(m.entries))
	if m.leaderCommit > n.commitIndex {
		n.commitIndex = min64(m.leaderCommit, lastNew)
		n.applyCommittedLocked()
	}
	reply.success = true
	reply.matchIndex = lastNew
	n.net.send(n.id, m.from, reply)
}

func (n *Node) handleAppendReplyLocked(m message) {
	if n.role != Leader || m.term != n.currentTerm {
		return
	}
	if m.success {
		if m.matchIndex > n.matchIndex[m.from] {
			n.matchIndex[m.from] = m.matchIndex
		}
		n.nextIndex[m.from] = m.matchIndex + 1
		n.advanceCommitLocked()
	} else {
		if n.nextIndex[m.from] > 1 {
			n.nextIndex[m.from]--
		}
	}
}

func (n *Node) advanceCommitLocked() {
	// Median match index across the cluster is committed, provided the
	// entry is from the current term (Raft safety rule §5.4.2).
	matches := make([]uint64, 0, len(n.peers))
	for _, p := range n.peers {
		matches = append(matches, n.matchIndex[p])
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] < matches[j] })
	candidate := matches[(len(matches)-1)/2]
	if candidate > n.commitIndex && candidate < uint64(len(n.log)) &&
		n.log[candidate].Term == n.currentTerm {
		n.commitIndex = candidate
		n.applyCommittedLocked()
	}
}

func (n *Node) applyCommittedLocked() {
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		e := n.log[n.lastApplied]
		select {
		case n.applyCh <- Committed{Entry: e}:
		case <-n.stopCh:
			return
		}
	}
}

func (n *Node) broadcastAppendLocked() {
	for _, p := range n.peers {
		if p == n.id {
			continue
		}
		next := n.nextIndex[p]
		if next == 0 {
			next = 1
		}
		prev := n.log[next-1]
		var entries []Entry
		if uint64(len(n.log)) > next {
			entries = append(entries, n.log[next:]...)
		}
		n.net.send(n.id, p, message{
			kind: msgAppendEntries, from: n.id, term: n.currentTerm,
			prevLogIndex: prev.Index, prevLogTerm: prev.Term,
			entries: entries, leaderCommit: n.commitIndex,
		})
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
