package consensus

import (
	"fmt"
	"testing"
	"time"

	"healthcloud/internal/faultinject"
)

// chaosTimeout is generous: chaos runs fight injected loss and latency.
const chaosTimeout = 20 * time.Second

// TestChaosInjectedLossAndLatencyConverges drives the cluster through a
// storm injected via the faultinject registry — 20% message loss plus
// latency spikes on a third of deliveries — and asserts the ledger still
// commits, then converges on identical logs once the faults are lifted.
func TestChaosInjectedLossAndLatencyConverges(t *testing.T) {
	c := newTestCluster(t, 5)
	faults := faultinject.NewRegistry(42)
	faults.Enable(FaultSend, faultinject.Fault{
		ErrorRate:   0.20,
		LatencyRate: 0.30,
		Latency:     3 * time.Millisecond,
	})
	c.Net.SetFaults(faults)

	const entries = 5
	for i := 0; i < entries; i++ {
		if _, err := c.ProposeAndWait([]byte(fmt.Sprintf("chaos-%d", i)), chaosTimeout); err != nil {
			t.Fatalf("proposal %d under injected chaos: %v", i, err)
		}
	}
	stats := faults.Stats()[FaultSend]
	if stats.Errors == 0 || stats.Latency == 0 {
		t.Fatalf("chaos was a no-op: stats = %+v", stats)
	}

	// Lift the faults; every node must converge on the same committed
	// prefix.
	faults.Disable(FaultSend)
	deadline := time.Now().Add(chaosTimeout)
	for time.Now().Before(deadline) {
		if logsConverged(c, entries) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, n := range c.Nodes {
		t.Logf("%s: %d entries, commit=%d", n.ID(), len(n.LogEntries()), n.CommitIndex())
	}
	t.Fatal("logs did not converge after chaos ended")
}

// TestChaosPartitionReelectionAndConvergence partitions the leader's
// side into a minority while fault-injected latency jitters the healthy
// majority, asserts the majority re-elects, then heals and asserts full
// log convergence — the §IV ordering service surviving a datacenter
// split.
func TestChaosPartitionReelectionAndConvergence(t *testing.T) {
	c := newTestCluster(t, 5)
	l, err := c.WaitForLeader(chaosTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProposeAndWait([]byte("pre-split"), chaosTimeout); err != nil {
		t.Fatal(err)
	}

	// Split: old leader plus one follower vs. the other three, with
	// injected delivery jitter inside the majority.
	var minority, majority []string
	minority = append(minority, l.ID())
	for _, n := range c.Nodes {
		if n == l {
			continue
		}
		if len(minority) < 2 {
			minority = append(minority, n.ID())
			continue
		}
		majority = append(majority, n.ID())
	}
	faults := faultinject.NewRegistry(7)
	faults.Enable(FaultSend, faultinject.Fault{LatencyRate: 0.5, Latency: 2 * time.Millisecond})
	c.Net.SetFaults(faults)
	c.Net.Partition(minority, majority)

	// A new leader must emerge on the majority side, in a higher term.
	isMajority := func(id string) bool {
		for _, m := range majority {
			if m == id {
				return true
			}
		}
		return false
	}
	var newLeader *Node
	deadline := time.Now().Add(chaosTimeout)
	for newLeader == nil && time.Now().Before(deadline) {
		for _, n := range c.Nodes {
			if isMajority(n.ID()) && n.Role() == Leader && n.Term() > l.Term() {
				newLeader = n
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if newLeader == nil {
		t.Fatal("majority never re-elected a leader during the partition")
	}

	// The majority keeps committing through the jitter.
	idx, _, err := newLeader.Propose([]byte("during-split"))
	if err != nil {
		t.Fatal(err)
	}
	for newLeader.CommitIndex() < idx && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if newLeader.CommitIndex() < idx {
		t.Fatal("majority could not commit during the partition")
	}

	// Heal and lift the jitter: all five nodes converge.
	c.Net.Heal()
	faults.Disable(FaultSend)
	if _, err := c.ProposeAndWait([]byte("post-heal"), chaosTimeout); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(chaosTimeout)
	for time.Now().Before(deadline) {
		if logsConverged(c, 3) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, n := range c.Nodes {
		t.Logf("%s: %d entries, commit=%d", n.ID(), len(n.LogEntries()), n.CommitIndex())
	}
	t.Fatal("logs did not converge after heal")
}
