// Package attest implements the Attestation Service of Figure 1. It keeps
// golden (approved) PCR values per platform layer, challenges TPMs and
// vTPMs with fresh nonces, verifies quotes, and extends a transitive
// trust model from hardware to hypervisor to guest OS to containers
// (§II-A). It also maintains the approved image-signing keys consulted by
// Image Management ("accepts only those VM images that are signed by an
// approved list of keys managed by an attestation service") and receives
// golden-value updates from the Change Management service (§II-B).
package attest

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"healthcloud/internal/hckrypto"
	"healthcloud/internal/tpm"
)

// Layer identifies one link of the transitive trust chain.
type Layer string

// Trust chain layers, ordered: each layer is only trustworthy if every
// layer below it is.
const (
	LayerHardware   Layer = "hardware"
	LayerHypervisor Layer = "hypervisor"
	LayerGuestOS    Layer = "guest-os"
	LayerContainer  Layer = "container"
)

// chainOrder lists layers from root to leaf.
var chainOrder = []Layer{LayerHardware, LayerHypervisor, LayerGuestOS, LayerContainer}

// LayerPCR maps each trust layer to the PCR that measures it.
var LayerPCR = map[Layer]int{
	LayerHardware:   tpm.PCRBios,
	LayerHypervisor: tpm.PCRHypervisor,
	LayerGuestOS:    tpm.PCRKernel,
	LayerContainer:  tpm.PCRContainer,
}

// Errors returned by this package.
var (
	ErrUnknownTPM      = errors.New("attest: TPM not enrolled")
	ErrNoGoldenValue   = errors.New("attest: no golden value for layer")
	ErrQuoteInvalid    = errors.New("attest: quote signature or nonce invalid")
	ErrMeasurement     = errors.New("attest: measurement does not match golden value")
	ErrUntrustedSigner = errors.New("attest: image signer not on approved list")
	ErrStaleNonce      = errors.New("attest: unknown or already-used nonce")
)

// Service is the attestation authority. The zero value is unusable;
// construct with NewService.
type Service struct {
	mu sync.RWMutex
	// enrolled TPM/vTPM attestation keys, by TPM name. Verifiers carry
	// their own scheme, so mixed-algorithm fleets attest side by side.
	aks map[string]hckrypto.Verifier
	// golden PCR values: tpmName -> layer -> approved PCR value.
	golden map[string]map[Layer][]byte
	// approved image-signing keys by fingerprint.
	imageSigners map[string]hckrypto.Verifier
	// outstanding challenge nonces (one-shot).
	nonces map[string][]byte
	// attestation decisions, for the audit trail.
	history []Decision
}

// Decision records one attestation outcome.
type Decision struct {
	TPMName string
	Layer   Layer
	Trusted bool
	Reason  string
}

// NewService creates an empty attestation service.
func NewService() *Service {
	return &Service{
		aks:          make(map[string]hckrypto.Verifier),
		golden:       make(map[string]map[Layer][]byte),
		imageSigners: make(map[string]hckrypto.Verifier),
		nonces:       make(map[string][]byte),
	}
}

// EnrollTPM registers a TPM's attestation key. In a real deployment this
// happens out of band when hardware is racked (or when a vTPM is created
// by an already-trusted vTPM manager).
func (s *Service) EnrollTPM(name string, ak hckrypto.Verifier) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aks[name] = ak
	if _, ok := s.golden[name]; !ok {
		s.golden[name] = make(map[Layer][]byte)
	}
}

// Enrolled reports whether a TPM is known.
func (s *Service) Enrolled(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.aks[name]
	return ok
}

// SetGoldenValue records the approved PCR value for one layer of one
// platform. Change Management calls this when a change is approved
// ("the CM service accordingly updates the Attestation Service regarding
// the approved changes and their new signatures", §II-B).
func (s *Service) SetGoldenValue(tpmName string, layer Layer, pcrValue []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.aks[tpmName]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTPM, tpmName)
	}
	s.golden[tpmName][layer] = append([]byte(nil), pcrValue...)
	return nil
}

// Challenge issues a one-shot nonce for a TPM. The caller must have the
// TPM quote against exactly this nonce; reuse is rejected (anti-replay).
func (s *Service) Challenge(tpmName string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.aks[tpmName]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTPM, tpmName)
	}
	nonce := []byte(hckrypto.NewUUID())
	s.nonces[tpmName] = nonce
	return append([]byte(nil), nonce...), nil
}

// AttestLayer verifies a quote for a single layer: the signature must be
// valid under the enrolled key, the nonce must match the outstanding
// challenge (and is consumed), and the quoted PCR must equal the golden
// value. The decision is recorded for auditing either way.
func (s *Service) AttestLayer(tpmName string, layer Layer, q *tpm.Quote) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attestLayerLocked(tpmName, layer, q)
}

func (s *Service) attestLayerLocked(tpmName string, layer Layer, q *tpm.Quote) error {
	record := func(trusted bool, reason string) {
		s.history = append(s.history, Decision{TPMName: tpmName, Layer: layer, Trusted: trusted, Reason: reason})
	}
	ak, ok := s.aks[tpmName]
	if !ok {
		record(false, "unknown TPM")
		return fmt.Errorf("%w: %q", ErrUnknownTPM, tpmName)
	}
	nonce, ok := s.nonces[tpmName]
	if !ok {
		record(false, "no outstanding challenge")
		return ErrStaleNonce
	}
	delete(s.nonces, tpmName) // one-shot
	if !tpm.VerifyQuote(ak, q, nonce) {
		record(false, "bad signature or nonce")
		return ErrQuoteInvalid
	}
	want, ok := s.golden[tpmName][layer]
	if !ok {
		record(false, "no golden value")
		return fmt.Errorf("%w: %s/%s", ErrNoGoldenValue, tpmName, layer)
	}
	pcr := LayerPCR[layer]
	got, ok := q.PCRs[pcr]
	if !ok {
		record(false, "quote missing layer PCR")
		return fmt.Errorf("%w: quote lacks PCR %d", ErrMeasurement, pcr)
	}
	if !bytes.Equal(got, want) {
		record(false, "PCR mismatch")
		return fmt.Errorf("%w: layer %s", ErrMeasurement, layer)
	}
	record(true, "ok")
	return nil
}

// Quoter produces quotes for a chain link; both *tpm.TPM and *tpm.Driver
// satisfy it.
type Quoter interface {
	GenerateQuote(nonce []byte, pcrs []int) (*tpm.Quote, error)
}

var (
	_ Quoter = (*tpm.TPM)(nil)
	_ Quoter = (*tpm.Driver)(nil)
)

// ChainLink pairs a TPM identity with the layer it vouches for.
type ChainLink struct {
	TPMName string
	Layer   Layer
	Quoter  Quoter
}

// AttestChain verifies a full transitive trust chain, root first. It
// stops at the first untrusted link: per the transitive trust model, a
// layer cannot be trusted if any layer beneath it is not.
func (s *Service) AttestChain(links []ChainLink) error {
	pos := make(map[Layer]int, len(chainOrder))
	for i, l := range chainOrder {
		pos[l] = i
	}
	last := -1
	for _, link := range links {
		p, ok := pos[link.Layer]
		if !ok {
			return fmt.Errorf("attest: unknown layer %q", link.Layer)
		}
		if p < last {
			return fmt.Errorf("attest: chain out of order at layer %q", link.Layer)
		}
		last = p
		nonce, err := s.Challenge(link.TPMName)
		if err != nil {
			return fmt.Errorf("attest: challenging %s: %w", link.TPMName, err)
		}
		q, err := link.Quoter.GenerateQuote(nonce, []int{LayerPCR[link.Layer]})
		if err != nil {
			return fmt.Errorf("attest: quoting %s: %w", link.TPMName, err)
		}
		if err := s.AttestLayer(link.TPMName, link.Layer, q); err != nil {
			return fmt.Errorf("attest: chain broken at %s (%s): %w", link.TPMName, link.Layer, err)
		}
	}
	return nil
}

// ApproveImageSigner adds a key to the approved list used by Image
// Management.
func (s *Service) ApproveImageSigner(key hckrypto.Verifier) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.imageSigners[key.Fingerprint()] = key
}

// RevokeImageSigner removes a key from the approved list.
func (s *Service) RevokeImageSigner(fingerprint string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.imageSigners, fingerprint)
}

// VerifyImageSignature checks that an image digest was signed by any
// currently-approved key, returning the signer's fingerprint.
func (s *Service) VerifyImageSignature(imageDigest, sig []byte) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for fp, key := range s.imageSigners {
		if hckrypto.VerifyEnvelope(key, imageDigest, sig) {
			return fp, nil
		}
	}
	return "", ErrUntrustedSigner
}

// History returns a copy of all attestation decisions (audit support).
func (s *Service) History() []Decision {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Decision(nil), s.history...)
}
