package attest

import (
	"errors"
	"testing"

	"healthcloud/internal/hckrypto"
	"healthcloud/internal/tpm"
)

// enrolledTPM creates a TPM with one measured layer and its golden value
// registered with the service.
func enrolledTPM(t *testing.T, s *Service, name string, layer Layer, measurement []byte) *tpm.TPM {
	t.Helper()
	tp, err := tpm.New(name)
	if err != nil {
		t.Fatalf("tpm.New: %v", err)
	}
	s.EnrollTPM(name, tp.AttestationKey())
	if err := tp.Extend(LayerPCR[layer], string(layer), measurement); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	golden, err := tp.ReadPCR(LayerPCR[layer])
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetGoldenValue(name, layer, golden); err != nil {
		t.Fatalf("SetGoldenValue: %v", err)
	}
	return tp
}

func attestOnce(t *testing.T, s *Service, tp *tpm.TPM, layer Layer) error {
	t.Helper()
	nonce, err := s.Challenge(tp.Name())
	if err != nil {
		t.Fatalf("Challenge: %v", err)
	}
	q, err := tp.GenerateQuote(nonce, []int{LayerPCR[layer]})
	if err != nil {
		t.Fatalf("GenerateQuote: %v", err)
	}
	return s.AttestLayer(tp.Name(), layer, q)
}

func TestAttestTrustedLayer(t *testing.T) {
	s := NewService()
	tp := enrolledTPM(t, s, "host-1", LayerHardware, []byte("bios-v1"))
	if err := attestOnce(t, s, tp, LayerHardware); err != nil {
		t.Errorf("trusted layer rejected: %v", err)
	}
	h := s.History()
	if len(h) != 1 || !h[0].Trusted {
		t.Errorf("history = %+v, want one trusted decision", h)
	}
}

func TestAttestDetectsDrift(t *testing.T) {
	s := NewService()
	tp := enrolledTPM(t, s, "host-1", LayerHardware, []byte("bios-v1"))
	// Unapproved change: extra measurement after golden value was taken.
	tp.Extend(LayerPCR[LayerHardware], "rootkit", []byte("evil"))
	if err := attestOnce(t, s, tp, LayerHardware); !errors.Is(err, ErrMeasurement) {
		t.Errorf("drifted layer: got %v, want ErrMeasurement", err)
	}
	h := s.History()
	if len(h) != 1 || h[0].Trusted {
		t.Errorf("history = %+v, want one untrusted decision", h)
	}
}

func TestAttestUnknownTPM(t *testing.T) {
	s := NewService()
	if _, err := s.Challenge("ghost"); !errors.Is(err, ErrUnknownTPM) {
		t.Errorf("Challenge unknown: %v", err)
	}
	if err := s.SetGoldenValue("ghost", LayerHardware, []byte{1}); !errors.Is(err, ErrUnknownTPM) {
		t.Errorf("SetGoldenValue unknown: %v", err)
	}
}

func TestNonceIsOneShot(t *testing.T) {
	s := NewService()
	tp := enrolledTPM(t, s, "host-1", LayerHardware, []byte("bios"))
	nonce, err := s.Challenge(tp.Name())
	if err != nil {
		t.Fatal(err)
	}
	q, err := tp.GenerateQuote(nonce, []int{LayerPCR[LayerHardware]})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttestLayer(tp.Name(), LayerHardware, q); err != nil {
		t.Fatalf("first attestation: %v", err)
	}
	// Replaying the same quote must fail: the nonce was consumed.
	if err := s.AttestLayer(tp.Name(), LayerHardware, q); !errors.Is(err, ErrStaleNonce) {
		t.Errorf("replay: got %v, want ErrStaleNonce", err)
	}
}

func TestAttestWithoutChallenge(t *testing.T) {
	s := NewService()
	tp := enrolledTPM(t, s, "host-1", LayerHardware, []byte("bios"))
	q, err := tp.GenerateQuote([]byte("self-chosen"), []int{LayerPCR[LayerHardware]})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttestLayer(tp.Name(), LayerHardware, q); !errors.Is(err, ErrStaleNonce) {
		t.Errorf("got %v, want ErrStaleNonce", err)
	}
}

func TestAttestNoGoldenValue(t *testing.T) {
	s := NewService()
	tp, err := tpm.New("host-1")
	if err != nil {
		t.Fatal(err)
	}
	s.EnrollTPM("host-1", tp.AttestationKey())
	nonce, _ := s.Challenge("host-1")
	q, err := tp.GenerateQuote(nonce, []int{LayerPCR[LayerHardware]})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttestLayer("host-1", LayerHardware, q); !errors.Is(err, ErrNoGoldenValue) {
		t.Errorf("got %v, want ErrNoGoldenValue", err)
	}
}

func TestAttestQuoteMissingPCR(t *testing.T) {
	s := NewService()
	tp := enrolledTPM(t, s, "host-1", LayerHardware, []byte("bios"))
	nonce, _ := s.Challenge("host-1")
	q, err := tp.GenerateQuote(nonce, []int{tpm.PCRKernel}) // wrong PCR
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttestLayer(tp.Name(), LayerHardware, q); !errors.Is(err, ErrMeasurement) {
		t.Errorf("got %v, want ErrMeasurement", err)
	}
}

func TestAttestForgedQuote(t *testing.T) {
	s := NewService()
	enrolledTPM(t, s, "host-1", LayerHardware, []byte("bios"))
	imposter, err := tpm.New("host-1") // same name, different key
	if err != nil {
		t.Fatal(err)
	}
	imposter.Extend(LayerPCR[LayerHardware], "bios", []byte("bios"))
	nonce, _ := s.Challenge("host-1")
	q, err := imposter.GenerateQuote(nonce, []int{LayerPCR[LayerHardware]})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttestLayer("host-1", LayerHardware, q); !errors.Is(err, ErrQuoteInvalid) {
		t.Errorf("forged quote: got %v, want ErrQuoteInvalid", err)
	}
}

// TestAttestChain verifies the full transitive model of Fig 5: hardware
// TPM, vTPM for the guest, and a container measurement in the vTPM.
func TestAttestChain(t *testing.T) {
	s := NewService()
	host, err := tpm.New("host-1")
	if err != nil {
		t.Fatal(err)
	}
	s.EnrollTPM("host-1", host.AttestationKey())
	host.Extend(tpm.PCRBios, "bios", []byte("bios-v1"))

	mgr, err := tpm.NewVTPMManager(host)
	if err != nil {
		t.Fatal(err)
	}
	vt, err := mgr.CreateInstance("vm-1")
	if err != nil {
		t.Fatal(err)
	}
	s.EnrollTPM(vt.Name(), vt.AttestationKey())
	vt.Extend(tpm.PCRKernel, "kernel", []byte("kernel-v1"))
	vt.Extend(tpm.PCRContainer, "analytics-image", []byte("img-sha"))

	// Record golden values for every layer.
	for layer, name := range map[Layer]string{LayerHardware: "host-1", LayerHypervisor: "host-1"} {
		v, _ := host.ReadPCR(LayerPCR[layer])
		if err := s.SetGoldenValue(name, layer, v); err != nil {
			t.Fatal(err)
		}
	}
	for _, layer := range []Layer{LayerGuestOS, LayerContainer} {
		v, _ := vt.ReadPCR(LayerPCR[layer])
		if err := s.SetGoldenValue(vt.Name(), layer, v); err != nil {
			t.Fatal(err)
		}
	}

	chain := []ChainLink{
		{TPMName: "host-1", Layer: LayerHardware, Quoter: host},
		{TPMName: "host-1", Layer: LayerHypervisor, Quoter: host},
		{TPMName: vt.Name(), Layer: LayerGuestOS, Quoter: vt},
		{TPMName: vt.Name(), Layer: LayerContainer, Quoter: vt},
	}
	if err := s.AttestChain(chain); err != nil {
		t.Fatalf("AttestChain: %v", err)
	}

	// Compromise the container layer and re-attest: the chain must break
	// at the container link and not before.
	vt.Extend(tpm.PCRContainer, "malicious-sidecar", []byte("evil"))
	err = s.AttestChain(chain)
	if err == nil {
		t.Fatal("compromised chain attested successfully")
	}
	if !errors.Is(err, ErrMeasurement) {
		t.Errorf("got %v, want ErrMeasurement", err)
	}
}

func TestAttestChainOrderEnforced(t *testing.T) {
	s := NewService()
	tp := enrolledTPM(t, s, "host-1", LayerHardware, []byte("bios"))
	chain := []ChainLink{
		{TPMName: "host-1", Layer: LayerGuestOS, Quoter: tp},
		{TPMName: "host-1", Layer: LayerHardware, Quoter: tp},
	}
	if err := s.AttestChain(chain); err == nil {
		t.Error("out-of-order chain accepted")
	}
	bad := []ChainLink{{TPMName: "host-1", Layer: Layer("mystery"), Quoter: tp}}
	if err := s.AttestChain(bad); err == nil {
		t.Error("unknown layer accepted")
	}
}

func TestImageSignerApproval(t *testing.T) {
	s := NewService()
	signer, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		t.Fatal(err)
	}
	digest := []byte("sha256:abc123")
	sig, err := signer.Sign(digest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.VerifyImageSignature(digest, sig); !errors.Is(err, ErrUntrustedSigner) {
		t.Errorf("unapproved signer: got %v, want ErrUntrustedSigner", err)
	}
	s.ApproveImageSigner(signer.Public())
	fp, err := s.VerifyImageSignature(digest, sig)
	if err != nil {
		t.Fatalf("approved signer rejected: %v", err)
	}
	if fp != signer.Public().Fingerprint() {
		t.Errorf("fingerprint = %q, want %q", fp, signer.Public().Fingerprint())
	}
	s.RevokeImageSigner(fp)
	if _, err := s.VerifyImageSignature(digest, sig); !errors.Is(err, ErrUntrustedSigner) {
		t.Errorf("revoked signer still accepted: %v", err)
	}
}

// TestChangeManagementFlow models §II-B: an approved change updates the
// golden value, after which the new state attests and the old state does
// not.
func TestChangeManagementFlow(t *testing.T) {
	s := NewService()
	tp := enrolledTPM(t, s, "host-1", LayerGuestOS, []byte("kernel-v1"))
	if err := attestOnce(t, s, tp, LayerGuestOS); err != nil {
		t.Fatalf("v1 attestation: %v", err)
	}
	// Apply an approved kernel patch: measured, then golden value updated
	// through the CM → attestation path.
	tp.Extend(LayerPCR[LayerGuestOS], "kernel-v2-patch", []byte("kernel-v2"))
	newGolden, _ := tp.ReadPCR(LayerPCR[LayerGuestOS])
	if err := s.SetGoldenValue("host-1", LayerGuestOS, newGolden); err != nil {
		t.Fatal(err)
	}
	if err := attestOnce(t, s, tp, LayerGuestOS); err != nil {
		t.Errorf("post-change attestation: %v", err)
	}
}
