// Command loadgen drives open-loop synthetic client fleets against a
// healthcloud instance and reports offered rate vs goodput, latency
// quantiles, and shed/rate-limit counts per phase.
//
// Against a live instance (get a session token from POST /api/v1/login):
//
//	go run ./cmd/loadgen -url http://127.0.0.1:8080 -token $SESSION \
//	    -fleets 4 -rate 400 -curve burst -duration 30s -out report.json
//
// Or self-contained against an in-process platform (CI smoke):
//
//	go run ./cmd/loadgen -selftest
package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"healthcloud/internal/core"
	"healthcloud/internal/fhir"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/httpapi"
	"healthcloud/internal/loadgen"
	"healthcloud/internal/rbac"
	"healthcloud/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	url := flag.String("url", "http://127.0.0.1:8080", "platform base URL")
	token := flag.String("token", "", "bearer session token (from POST /api/v1/login)")
	fleets := flag.Int("fleets", 4, "synthetic client fleets driven concurrently")
	rate := flag.Float64("rate", 200, "peak offered rate per fleet, requests/sec")
	curve := flag.String("curve", "constant", "arrival curve: constant | diurnal | burst | herd")
	duration := flag.Duration("duration", 10*time.Second, "phase duration")
	mix := flag.String("mix", "ingest=8,query=3,analytics=1", "workload mix as op=weight[,op=weight...]; ops: ingest, query, analytics")
	concurrency := flag.Int("concurrency", 64, "per-fleet connection pool (in-flight cap)")
	group := flag.String("group", "load-study", "study group uploads target (consent is granted per fleet)")
	out := flag.String("out", "", "write the JSON report here (empty = stdout)")
	selftest := flag.Bool("selftest", false, "run a short fixed plan against an in-process platform (ignores -url/-token)")
	flag.Parse()

	if *selftest {
		return runSelftest(*out)
	}
	if *token == "" {
		return fmt.Errorf("-token required (or use -selftest); obtain one from POST %s/api/v1/login", *url)
	}
	weights, err := parseMix(*mix)
	if err != nil {
		return err
	}
	phases := []loadgen.Phase{phaseFor(*curve, *rate, *duration)}
	fls := make([]loadgen.Fleet, 0, *fleets)
	for i := 0; i < *fleets; i++ {
		fl, err := buildFleet(*url, *token, fmt.Sprintf("fleet-%d", i), *group,
			phases, weights, *concurrency)
		if err != nil {
			return fmt.Errorf("fleet %d setup: %w", i, err)
		}
		fls = append(fls, fl)
	}
	fmt.Printf("driving %d fleet(s) x %s curve, peak %.0f req/s each, for %v\n",
		*fleets, *curve, *rate, *duration)
	rep := loadgen.New(loadgen.Config{}).Run(fls)
	return emit(rep, *out)
}

// phaseFor maps a curve name + peak rate to a single named phase.
func phaseFor(name string, rate float64, d time.Duration) loadgen.Phase {
	switch name {
	case "diurnal":
		return loadgen.Phase{Name: "diurnal", Duration: d,
			Curve: loadgen.Diurnal{Base: rate / 10, Peak: rate, Period: d}}
	case "burst":
		return loadgen.Phase{Name: "burst", Duration: d,
			Curve: loadgen.Burst{Base: rate / 10, Peak: rate, Every: d / 4, Width: d / 20}}
	case "herd":
		return loadgen.Phase{Name: "herd", Duration: d,
			Curve: loadgen.Herd{Outage: d / 4, Spike: rate, Base: rate / 10, Decay: d / 8}}
	default:
		return loadgen.Phase{Name: "constant", Duration: d, Curve: loadgen.Constant{RPS: rate}}
	}
}

// parseMix decodes "ingest=8,query=3,analytics=1".
func parseMix(s string) (map[string]int, error) {
	weights := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want op=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad weight in %q", part)
		}
		switch name {
		case "ingest", "query", "analytics":
			weights[name] = w
		default:
			return nil, fmt.Errorf("unknown op %q (want ingest, query, or analytics)", name)
		}
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return weights, nil
}

// buildFleet registers one device for the fleet over the API, grants
// consent for its synthetic patient, pre-encrypts the upload payload,
// and wires the weighted HTTP ops.
func buildFleet(url, token, name, group string, phases []loadgen.Phase,
	weights map[string]int, concurrency int) (loadgen.Fleet, error) {
	cli := &http.Client{Timeout: 30 * time.Second}
	deviceID, patientID := name+"-device", name+"-patient"

	// Register the device: the platform answers with its shared key.
	regBody, _ := json.Marshal(map[string]string{"client_id": deviceID})
	var reg struct {
		Key string `json:"key"`
	}
	if err := call(cli, token, "POST", url+"/api/v1/clients", regBody, &reg); err != nil {
		return loadgen.Fleet{}, fmt.Errorf("registering client: %w", err)
	}
	key, err := base64.StdEncoding.DecodeString(reg.Key)
	if err != nil {
		return loadgen.Fleet{}, fmt.Errorf("decoding client key: %w", err)
	}
	// Consent the fleet's patient into the study group.
	consentBody, _ := json.Marshal(map[string]string{"patient": patientID, "group": group})
	if err := call(cli, token, "POST", url+"/api/v1/consents", consentBody, nil); err != nil {
		return loadgen.Fleet{}, fmt.Errorf("granting consent: %w", err)
	}
	// One pre-encrypted bundle per fleet: the harness measures the
	// platform, not client-side crypto.
	bundle := fhir.NewBundle("collection")
	if err := bundle.AddResource(&fhir.Patient{ResourceType: "Patient", ID: patientID, Gender: "other"}); err != nil {
		return loadgen.Fleet{}, err
	}
	raw, err := fhir.Marshal(bundle)
	if err != nil {
		return loadgen.Fleet{}, err
	}
	encrypted, err := hckrypto.EncryptGCM(key, raw, []byte(deviceID))
	if err != nil {
		return loadgen.Fleet{}, err
	}

	uploadURL := url + "/api/v1/uploads?client=" + deviceID + "&group=" + group
	ops := []loadgen.Op{
		{Name: "ingest", Weight: weights["ingest"], Do: func() loadgen.Outcome {
			return doHTTP(cli, token, "POST", uploadURL, encrypted)
		}},
		{Name: "query", Weight: weights["query"], Do: func() loadgen.Outcome {
			return doHTTP(cli, token, "GET", url+"/api/v1/billing", nil)
		}},
		{Name: "analytics", Weight: weights["analytics"], Do: func() loadgen.Outcome {
			return doHTTP(cli, token, "GET", url+"/api/v1/services/nlu", nil)
		}},
	}
	return loadgen.Fleet{Name: name, Phases: phases, Ops: ops, Concurrency: concurrency}, nil
}

// doHTTP fires one request and classifies the response.
func doHTTP(cli *http.Client, token, method, url string, body []byte) loadgen.Outcome {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		return loadgen.OutcomeError
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := cli.Do(req)
	if err != nil {
		return loadgen.OutcomeError
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return loadgen.FromStatus(resp.StatusCode)
}

// call is the setup-path helper: non-2xx is an error, out (when non-nil)
// decodes the JSON body.
func call(cli *http.Client, token, method, url string, body []byte, out any) error {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := cli.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s %s: %d %s", method, url, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// runSelftest boots an in-process platform (admission on, modest
// capacity) behind a real HTTP listener and drives a short three-phase
// plan — steady, burst, thundering herd — with two fleets. It is the CI
// smoke test: end to end over real sockets, seconds of wall time.
func runSelftest(out string) error {
	cfg := core.Config{
		Tenant:        "loadtest",
		Telemetry:     telemetry.New(),
		Admission:     true,
		AdmissionRate: 100000, // shed on backlog, not per-tenant quota
		ShedBulkDepth: 128,
	}
	platform, err := core.New(cfg)
	if err != nil {
		return err
	}
	defer platform.Close()
	platform.SeedDemoProviders()

	idp, err := rbac.NewIdentityProvider("load-sso")
	if err != nil {
		return err
	}
	platform.RBAC.ApproveIdentityProvider("load-sso", idp.VerifyKey())
	userID := "load-sso:driver@loadtest"
	if err := platform.RBAC.RegisterUser("loadtest", userID); err != nil {
		return err
	}
	if err := platform.RBAC.AssignRole(userID, rbac.RoleAdmin, rbac.Scope{Tenant: "loadtest"}, ""); err != nil {
		return err
	}
	srv := httptest.NewServer(httpapi.New(platform))
	defer srv.Close()

	idTok, err := idp.Issue("driver@loadtest", "loadtest", time.Hour)
	if err != nil {
		return err
	}
	body, _ := json.Marshal(idTok)
	var login struct {
		Token string `json:"token"`
	}
	if err := call(&http.Client{}, "", "POST", srv.URL+"/api/v1/login", body, &login); err != nil {
		return fmt.Errorf("login: %w", err)
	}

	phases := []loadgen.Phase{
		{Name: "steady", Duration: time.Second, Curve: loadgen.Constant{RPS: 150}},
		{Name: "burst", Duration: time.Second,
			Curve: loadgen.Burst{Base: 150, Peak: 1200, Every: 400 * time.Millisecond, Width: 120 * time.Millisecond}},
		{Name: "herd", Duration: time.Second,
			Curve: loadgen.Herd{Outage: 250 * time.Millisecond, Spike: 1000, Base: 150, Decay: 250 * time.Millisecond}},
	}
	weights := map[string]int{"ingest": 8, "query": 3, "analytics": 1}
	fls := make([]loadgen.Fleet, 2)
	for i := range fls {
		fls[i], err = buildFleet(srv.URL, login.Token, fmt.Sprintf("self-%d", i),
			"smoke-study", phases, weights, 64)
		if err != nil {
			return fmt.Errorf("selftest fleet %d: %w", i, err)
		}
	}
	eng := loadgen.New(loadgen.Config{Snapshot: func() map[string]any {
		s := platform.Admission.Snap()
		return map[string]any{
			"queue_depth":  s.QueueDepth,
			"shedding":     s.Shedding,
			"service_rate": s.ServiceRate,
		}
	}})
	fmt.Printf("selftest: 2 fleets x 3 phases (steady/burst/herd) against %s\n", srv.URL)
	rep := eng.Run(fls)
	if err := emit(rep, out); err != nil {
		return err
	}
	// Smoke gate: the harness must have pushed real traffic through.
	var ok, offered uint64
	for _, ph := range []string{"steady", "burst", "herd"} {
		tot := rep.Totals(ph)
		ok += tot.OK
		offered += tot.Offered
	}
	if offered == 0 || ok == 0 {
		return fmt.Errorf("selftest drove no successful traffic (offered %d, ok %d)", offered, ok)
	}
	fmt.Printf("selftest ok: offered %d, goodput %d\n", offered, ok)
	return nil
}

// emit writes the report as JSON to out (stdout when empty) plus a
// human summary per fleet/phase on stdout.
func emit(rep *loadgen.Report, out string) error {
	for _, f := range rep.Fleets {
		for _, ph := range f.Phases {
			fmt.Printf("%-10s %-8s offered %6.0f/s  goodput %6.0f/s  429 %6d  503 %6d  err %4d  overflow %5d  p95 %7.1fms\n",
				f.Fleet, ph.Phase, ph.OfferedRate, ph.GoodputRate,
				ph.RateLimited, ph.Shed, ph.Errors, ph.Overflow, ph.P95Ms)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if out == "" {
		_, err = os.Stdout.Write(append(data, '\n'))
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}
