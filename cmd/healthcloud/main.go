// Command healthcloud runs a trusted health cloud instance with its REST
// API on localhost. It seeds a demo tenant, an approved identity
// provider, and three users (admin, ingestor, auditor), then prints a
// ready-to-paste login token request for each.
//
//	go run ./cmd/healthcloud -addr :8080
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"healthcloud/internal/core"
	"healthcloud/internal/httpapi"
	"healthcloud/internal/kb"
	"healthcloud/internal/rbac"
	"healthcloud/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	tenant := flag.String("tenant", "demo-health", "tenant name")
	ledger := flag.Bool("ledger", true, "run the provenance blockchain")
	ledgerBatch := flag.Bool("ledger-batch", false, "group-commit provenance batching (max 64 tx / 5 ms window)")
	channels := flag.Int("channels", 1, "provenance ledger channels (1 = single ledger; >1 partitions records by patient across independently ordered channels)")
	snapEvery := flag.Int("ledger-snapshot-every", 0, "cut a ledger world-state snapshot into the WAL every K blocks so restarts replay from the snapshot instead of the full chain (0 disables)")
	obs := flag.Bool("telemetry", true, "serve metrics at /metrics and traces at /traces/{id}")
	traceSample := flag.Float64("trace-sample", 0, "tail-sampling keep probability for unremarkable traces (0 = keep all; errored traces and the slowest roots are always kept)")
	traceSlowK := flag.Int("trace-slow-k", 0, "pin the K slowest traces per root span name in the trace store (0 = default 8)")
	mon := flag.Bool("monitor", true, "run the self-monitoring watchdog (/readyz, /statusz, /metrics/history)")
	monInterval := flag.Duration("monitor-interval", time.Second, "watchdog tick period")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (own listener; empty disables)")
	shards := flag.Int("shards", 1, "Data Lake shard count (1 = single lake; >1 enables the consistent-hash shardlake)")
	replicas := flag.Int("replicas", 1, "Data Lake replication factor R (clamped to -shards)")
	dataDir := flag.String("data-dir", "", "root directory for durable storage: lake segments + ledger WAL, replayed on restart (empty = in-memory only)")
	sigScheme := flag.String("sig-scheme", "", "ledger endorsement signature scheme: ed25519 (default) or rsa; chains endorsed under either scheme verify regardless (algorithm-tagged envelopes)")
	adm := flag.Bool("admission", false, "enable admission control: per-tenant token buckets (429) and queue-depth load shedding (503), both with honest Retry-After")
	admRate := flag.Float64("admission-rate", 0, "default per-tenant admission rate in requests/sec for tenants without a metered quota (0 = 200/s)")
	admBurst := flag.Float64("admission-burst", 0, "default per-tenant burst capacity (0 = 2x rate)")
	shedBulk := flag.Int("shed-bulk-depth", 0, "ingest backlog above which bulk traffic (uploads, registrations) sheds (0 = 256)")
	shedNormal := flag.Int("shed-normal-depth", 0, "deeper backlog limit for interactive traffic (0 = 4x bulk depth); critical traffic is never shed")
	flag.Parse()

	kbCfg := kb.DefaultConfig()
	kbCfg.Drugs, kbCfg.Diseases = 60, 40
	dataset, err := kb.Generate(kbCfg)
	if err != nil {
		return err
	}
	cfg := core.Config{Tenant: *tenant, KBDataset: dataset, KBLatency: 10 * time.Millisecond,
		Shards: *shards, Replicas: *replicas, DataDir: *dataDir}
	if *ledger {
		cfg.LedgerPeers = []string{"hospital", "audit-svc", "data-protection"}
		cfg.LedgerBatch = *ledgerBatch
		cfg.Channels = *channels
		cfg.LedgerSnapshotEvery = *snapEvery
		cfg.SignatureScheme = *sigScheme
	}
	if *obs {
		cfg.Telemetry = telemetry.New()
		cfg.TraceSample = *traceSample
		cfg.TraceSlowK = *traceSlowK
	}
	if *mon {
		cfg.Monitor = true
		cfg.MonitorInterval = *monInterval
	}
	if *adm {
		cfg.Admission = true
		cfg.AdmissionRate = *admRate
		cfg.AdmissionBurst = *admBurst
		cfg.ShedBulkDepth = *shedBulk
		cfg.ShedNormalDepth = *shedNormal
	}
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		var pprofLn net.Addr
		pprofSrv, pprofLn, err = telemetry.StartPprof(*pprofAddr)
		if err != nil {
			return fmt.Errorf("starting pprof listener: %w", err)
		}
		defer pprofSrv.Close()
		fmt.Printf("pprof profiling on http://%s/debug/pprof/\n", pprofLn)
	}
	platform, err := core.New(cfg)
	if err != nil {
		return err
	}
	platform.SeedDemoProviders()

	idp, err := rbac.NewIdentityProvider("demo-sso")
	if err != nil {
		return err
	}
	platform.RBAC.ApproveIdentityProvider("demo-sso", idp.VerifyKey())
	users := map[string]rbac.Role{
		"admin@demo":   rbac.RoleAdmin,
		"nurse@demo":   rbac.RoleIngestor,
		"auditor@demo": rbac.RoleAuditor,
	}
	fmt.Printf("healthcloud instance %q listening on http://%s\n", *tenant, *addr)
	fmt.Printf("components: %d | ledger: %v (batch: %v, channels: %d) | telemetry: %v | monitor: %v | admission: %v\n\n",
		len(platform.Components()), *ledger, *ledgerBatch, *channels, *obs, *mon, *adm)
	fmt.Println("demo login tokens (POST each body to /api/v1/login):")
	enc := json.NewEncoder(os.Stdout)
	for subject, role := range users {
		userID := "demo-sso:" + subject
		if err := platform.RBAC.RegisterUser(*tenant, userID); err != nil {
			return err
		}
		if err := platform.RBAC.AssignRole(userID, role, rbac.Scope{Tenant: *tenant}, ""); err != nil {
			return err
		}
		tok, err := idp.Issue(subject, *tenant, 24*time.Hour)
		if err != nil {
			return err
		}
		fmt.Printf("-- %s (%s):\n", subject, role)
		if err := enc.Encode(tok); err != nil {
			return err
		}
	}

	srv := &http.Server{
		Addr:         *addr,
		Handler:      httpapi.New(platform),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	// Graceful shutdown on SIGINT/SIGTERM, in drain order: stop taking
	// uploads (srv.Shutdown finishes in-flight requests first), then
	// platform.Close drains the ingest workers, flushes any ledger
	// batcher, closes the bus and the network, and finally syncs and
	// closes the durable logs — so every acknowledged upload is on disk
	// before exit. A SIGKILL instead exercises the crash-recovery path
	// (experiment E20): restart replays the same state from the logs.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		drain(nil, pprofSrv, platform)
		return err
	case sig := <-stop:
		fmt.Printf("\n%s: draining and flushing durable logs\n", sig)
		drain(srv, pprofSrv, platform)
		return nil
	}
}

// drain is the graceful-shutdown sequence: finish in-flight API
// requests (bounded), close the pprof side listener so its port is
// released, then close the platform — ingest workers drain, ledger
// batchers flush, and the durable logs sync before exit. Any server
// may be nil.
func drain(api, pprof *http.Server, platform interface{ Close() }) {
	if api != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := api.Shutdown(ctx); err != nil {
			api.Close()
		}
	}
	if pprof != nil {
		pprof.Close()
	}
	platform.Close()
}
