package main

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"healthcloud/internal/telemetry"
)

type closerFunc func()

func (f closerFunc) Close() { f() }

// TestDrainClosesPprof pins the shutdown contract: the pprof side
// listener must be closed by the graceful-shutdown drain (it used to
// leak past SIGINT/SIGTERM), and the platform closes after it.
func TestDrainClosesPprof(t *testing.T) {
	srv, addr, err := telemetry.StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("http://%s/debug/pprof/cmdline", addr)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("pprof not serving before drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d before drain, want 200", resp.StatusCode)
	}

	platformClosed := false
	drain(nil, srv, closerFunc(func() { platformClosed = true }))

	if !platformClosed {
		t.Fatal("drain did not close the platform")
	}
	// The listener is closed; new connections must fail (allow a beat
	// for the kernel to tear the socket down).
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(url)
		if err != nil {
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("pprof still serving after drain")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
