// Command benchreport runs the full reproduction harness (experiments
// E1–E24 from DESIGN.md) and prints each experiment's measurements and
// shape verdict — the data behind EXPERIMENTS.md.
//
//	go run ./cmd/benchreport                      # all experiments
//	go run ./cmd/benchreport -only E9             # one experiment
//	go run ./cmd/benchreport -json results.json   # also write JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"healthcloud/internal/experiments"
)

func main() {
	// E20's crash test re-executes this binary as its ingest child;
	// dispatch before flag parsing so the child sees no CLI surface.
	if os.Getenv(experiments.E20ChildEnv) != "" {
		experiments.E20Child()
	}
	only := flag.String("only", "", "run a single experiment (e.g. E9 or A1)")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations A1-A3")
	jsonPath := flag.String("json", "", "write all measurements to this file as JSON")
	flag.Parse()

	runners := map[string]func() (*experiments.Result, error){
		"E1": experiments.E1CacheVsRemote, "E2": experiments.E2MultiLevelCache,
		"E3": experiments.E3SharedVsPublicKey, "E4": experiments.E4HMACVsSignature,
		"E5": experiments.E5IngestPipeline, "E6": experiments.E6LedgerCommit,
		"E7": experiments.E7RedactableSignatures, "E8": experiments.E8AttestationChain,
		"E9": experiments.E9JMFAccuracy, "E10": experiments.E10DELTRecovery,
		"E11": experiments.E11KAnonymity, "E12": experiments.E12EdgeVsServer,
		"E13": experiments.E13ComputeToData, "E14": experiments.E14TiresiasDDI,
		"E15": experiments.E15ChaosIngestion, "E16": experiments.E16TelemetryOverhead,
		"E17": experiments.E17GroupCommit, "E18": experiments.E18WatchdogDetection,
		"E19": experiments.E19ShardedLake, "E20": experiments.E20CrashRecovery,
		"E21": experiments.E21MultiChannel,
		"E22": experiments.E22SignerAgility,
		"E23": experiments.E23TailSampling,
		"E24": experiments.E24AdmissionControl,
		"A1":  experiments.A1JMFSourceAblation, "A2": experiments.A2EndorsementPolicy,
		"A3": experiments.A3CacheTierAblation,
	}

	var results []*experiments.Result
	if *only != "" {
		f, ok := runners[*only]
		if !ok {
			log.Fatalf("unknown experiment %q (E1..E24)", *only)
		}
		r, ok := report(*only, f)
		if r != nil {
			results = append(results, r)
		}
		writeJSON(*jsonPath, results)
		if !ok {
			os.Exit(1)
		}
		return
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23", "E24"}
	if *ablations {
		order = append(order, "A1", "A2", "A3")
	}
	failures := 0
	for _, id := range order {
		r, ok := report(id, runners[id])
		if r != nil {
			results = append(results, r)
		}
		if !ok {
			failures++
		}
	}
	writeJSON(*jsonPath, results)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}

func report(id string, f func() (*experiments.Result, error)) (*experiments.Result, bool) {
	start := time.Now()
	r, err := f()
	if err != nil {
		fmt.Printf("%s: ERROR: %v\n\n", id, err)
		return nil, false
	}
	fmt.Printf("%s  (%.1fs)\n\n", r.String(), time.Since(start).Seconds())
	return r, true
}

// writeJSON dumps every completed experiment's measurements to path, so
// CI and notebooks can diff runs without scraping the text report.
func writeJSON(path string, results []*experiments.Result) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatalf("marshaling results: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatalf("writing %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d result(s) to %s\n", len(results), path)
}
