// Command benchreport runs the full reproduction harness (experiments
// E1–E15 from DESIGN.md) and prints each experiment's measurements and
// shape verdict — the data behind EXPERIMENTS.md.
//
//	go run ./cmd/benchreport            # all experiments
//	go run ./cmd/benchreport -only E9   # one experiment
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"healthcloud/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment (e.g. E9 or A1)")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations A1-A3")
	flag.Parse()

	runners := map[string]func() (*experiments.Result, error){
		"E1": experiments.E1CacheVsRemote, "E2": experiments.E2MultiLevelCache,
		"E3": experiments.E3SharedVsPublicKey, "E4": experiments.E4HMACVsSignature,
		"E5": experiments.E5IngestPipeline, "E6": experiments.E6LedgerCommit,
		"E7": experiments.E7RedactableSignatures, "E8": experiments.E8AttestationChain,
		"E9": experiments.E9JMFAccuracy, "E10": experiments.E10DELTRecovery,
		"E11": experiments.E11KAnonymity, "E12": experiments.E12EdgeVsServer,
		"E13": experiments.E13ComputeToData, "E14": experiments.E14TiresiasDDI,
		"E15": experiments.E15ChaosIngestion,
		"A1":  experiments.A1JMFSourceAblation, "A2": experiments.A2EndorsementPolicy,
		"A3": experiments.A3CacheTierAblation,
	}

	if *only != "" {
		f, ok := runners[*only]
		if !ok {
			log.Fatalf("unknown experiment %q (E1..E15)", *only)
		}
		report(*only, f)
		return
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"}
	if *ablations {
		order = append(order, "A1", "A2", "A3")
	}
	failures := 0
	for _, id := range order {
		if !report(id, runners[id]) {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}

func report(id string, f func() (*experiments.Result, error)) bool {
	start := time.Now()
	r, err := f()
	if err != nil {
		fmt.Printf("%s: ERROR: %v\n\n", id, err)
		return false
	}
	fmt.Printf("%s  (%.1fs)\n\n", r.String(), time.Since(start).Seconds())
	return true
}
