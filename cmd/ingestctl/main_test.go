package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestRetryAfterParsing(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", time.Second},        // absent → 1s default
		{"garbage", time.Second}, // unparsable → default
		{"0", time.Second},       // non-positive → default
		{"-3", time.Second},
		{"2", 2 * time.Second},
		{"60", maxRetryAfter}, // capped so a bad server can't park the CLI
	}
	for _, c := range cases {
		if got := retryAfter(c.header); got != c.want {
			t.Errorf("retryAfter(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

func TestPostJSONRetriesOn503(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":"yes"}`))
	}))
	defer srv.Close()

	var slept []time.Duration
	origSleep := sleep
	sleep = func(d time.Duration) { slept = append(slept, d) }
	defer func() { sleep = origSleep }()

	var out map[string]string
	if err := postJSON(srv.URL, "tok", []byte(`{}`), &out); err != nil {
		t.Fatalf("postJSON after two 503s: %v", err)
	}
	if calls != 3 {
		t.Errorf("server saw %d calls, want 3 (two busy + one success)", calls)
	}
	if out["ok"] != "yes" {
		t.Errorf("response = %v", out)
	}
	// The client honored the server-suggested delay, not its own guess.
	if len(slept) != 2 || slept[0] != 2*time.Second || slept[1] != 2*time.Second {
		t.Errorf("slept %v, want two 2s waits from Retry-After", slept)
	}
}

func TestPostJSONGivesUpAfterRetryBudget(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	origSleep := sleep
	sleep = func(time.Duration) {}
	defer func() { sleep = origSleep }()

	var out map[string]string
	if err := postJSON(srv.URL, "", []byte(`{}`), &out); err == nil {
		t.Fatal("postJSON succeeded against a permanently busy server")
	}
	if want := retries + 1; calls != want {
		t.Errorf("server saw %d calls, want %d (initial + %d retries)", calls, want, retries)
	}
}

func TestPostJSONDoesNotRetryClientErrors(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	origSleep := sleep
	sleep = func(time.Duration) { t.Error("slept on a non-retryable error") }
	defer func() { sleep = origSleep }()

	var out map[string]string
	if err := postJSON(srv.URL, "", []byte(`{}`), &out); err == nil {
		t.Fatal("postJSON succeeded on a 400")
	}
	if calls != 1 {
		t.Errorf("server saw %d calls, want 1 — 4xx is the caller's bug, not load", calls)
	}
}
