// Command ingestctl is the client-side CLI for a running healthcloud
// instance: it logs in with a federated token, registers a device,
// encrypts a FHIR bundle under the issued shared key, uploads it, and
// polls the status URL until ingestion completes.
//
//	ingestctl -server http://127.0.0.1:8080 -token token.json \
//	          -bundle bundle.json -client device-1 -group study-1
package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"time"

	"healthcloud/internal/fhir"
	"healthcloud/internal/hckrypto"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	server := flag.String("server", "http://127.0.0.1:8080", "healthcloud base URL")
	tokenPath := flag.String("token", "", "path to a federated identity token JSON (from cmd/healthcloud output)")
	bundlePath := flag.String("bundle", "", "path to a FHIR bundle JSON")
	clientID := flag.String("client", "device-1", "client/device identifier")
	group := flag.String("group", "study-1", "study group the data is consented to")
	flag.IntVar(&retries, "retries", 4, "extra attempts when the server answers 503 Service Unavailable")
	flag.Parse()
	if *tokenPath == "" || *bundlePath == "" {
		flag.Usage()
		return fmt.Errorf("-token and -bundle are required")
	}

	// 1. Login.
	tokenBody, err := os.ReadFile(*tokenPath)
	if err != nil {
		return err
	}
	var login struct {
		Token string `json:"token"`
		User  string `json:"user"`
	}
	if err := postJSON(*server+"/api/v1/login", "", tokenBody, &login); err != nil {
		return fmt.Errorf("login: %w", err)
	}
	fmt.Printf("logged in as %s\n", login.User)

	// 2. Register the device, receiving the shared upload key.
	var reg struct {
		Key string `json:"key"`
	}
	regBody, _ := json.Marshal(map[string]string{"client_id": *clientID})
	if err := postJSON(*server+"/api/v1/clients", login.Token, regBody, &reg); err != nil {
		return fmt.Errorf("register client: %w", err)
	}
	key, err := base64.StdEncoding.DecodeString(reg.Key)
	if err != nil {
		return err
	}
	fmt.Printf("device %s registered (key %s…)\n", *clientID, reg.Key[:12])

	// 3. Validate and encrypt the bundle locally.
	raw, err := os.ReadFile(*bundlePath)
	if err != nil {
		return err
	}
	if _, err := fhir.ParseBundle(raw); err != nil {
		return fmt.Errorf("bundle invalid before upload: %w", err)
	}
	encrypted, err := hckrypto.EncryptGCM(key, raw, []byte(*clientID))
	if err != nil {
		return err
	}

	// 4. Upload and poll the status URL.
	var up struct {
		UploadID  string `json:"upload_id"`
		StatusURL string `json:"status_url"`
	}
	url := fmt.Sprintf("%s/api/v1/uploads?client=%s&group=%s", *server, *clientID, *group)
	if err := postJSON(url, login.Token, encrypted, &up); err != nil {
		return fmt.Errorf("upload: %w", err)
	}
	fmt.Printf("uploaded: %s (status %s)\n", up.UploadID, up.StatusURL)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st struct {
			State string `json:"state"`
			RefID string `json:"ref_id"`
			Error string `json:"error"`
		}
		if err := getJSON(*server+up.StatusURL, login.Token, &st); err != nil {
			return err
		}
		fmt.Printf("  state=%s\n", st.State)
		if st.State == "stored" {
			fmt.Printf("done: reference id %s\n", st.RefID)
			return nil
		}
		if st.State == "failed" {
			return fmt.Errorf("ingestion failed: %s", st.Error)
		}
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("timed out waiting for ingestion")
}

// retries is how many 503 answers are retried before giving up;
// sleep is swapped out by tests.
var (
	retries = 4
	sleep   = time.Sleep
)

const maxRetryAfter = 5 * time.Second

// unavailableError carries a 503's server-suggested backoff.
type unavailableError struct {
	after time.Duration
	msg   string
}

func (e *unavailableError) Error() string { return e.msg }

func postJSON(url, bearer string, body []byte, out any) error {
	return withRetry(func() error {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		if bearer != "" {
			req.Header.Set("Authorization", "Bearer "+bearer)
		}
		return doJSON(req, out)
	})
}

func getJSON(url, bearer string, out any) error {
	return withRetry(func() error {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		req.Header.Set("Authorization", "Bearer "+bearer)
		return doJSON(req, out)
	})
}

// withRetry re-runs op when the server answers 503, sleeping the
// Retry-After duration it suggested. Other failures return at once.
func withRetry(op func() error) error {
	var err error
	for attempt := 0; attempt <= retries; attempt++ {
		err = op()
		var ue *unavailableError
		if !errors.As(err, &ue) {
			return err
		}
		if attempt < retries {
			fmt.Printf("  server busy, retrying in %v (%d/%d)\n", ue.after, attempt+1, retries)
			sleep(ue.after)
		}
	}
	return err
}

func doJSON(req *http.Request, out any) error {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		return &unavailableError{after: retryAfter(resp.Header.Get("Retry-After")),
			msg: fmt.Sprintf("%s: %s", resp.Status, bytes.TrimSpace(data))}
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, out)
}

// retryAfter parses a Retry-After value in seconds, defaulting to 1s
// and capping at maxRetryAfter so a misbehaving server can't park the
// CLI.
func retryAfter(h string) time.Duration {
	d := time.Second
	if n, err := strconv.Atoi(h); err == nil && n > 0 {
		d = time.Duration(n) * time.Second
	}
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}
