// Package healthcloud's root benchmark suite: one testing.B benchmark
// per DESIGN.md experiment, exercising the measured code path directly
// (cmd/benchreport runs the full parameterized experiments and prints
// the EXPERIMENTS.md tables; these benches give ns/op + allocs for the
// same hot paths).
package healthcloud_test

import (
	"fmt"
	"testing"
	"time"

	"healthcloud/internal/analytics"
	"healthcloud/internal/anonymize"
	"healthcloud/internal/attest"
	"healthcloud/internal/audit"
	"healthcloud/internal/blockchain"
	"healthcloud/internal/bus"
	"healthcloud/internal/cloud"
	"healthcloud/internal/consent"
	"healthcloud/internal/delt"
	"healthcloud/internal/emr"
	"healthcloud/internal/fhir"
	"healthcloud/internal/gateway"
	"healthcloud/internal/hccache"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/ingest"
	"healthcloud/internal/jmf"
	"healthcloud/internal/kb"
	"healthcloud/internal/redact"
	"healthcloud/internal/scan"
	"healthcloud/internal/store"
	"healthcloud/internal/tiresias"
)

// BenchmarkE1CacheVsRemote measures a cached KB read (the remote arm's
// 40 ms WAN cost is modeled in cmd/benchreport; here the cache path is
// timed for real).
func BenchmarkE1CacheVsRemote(b *testing.B) {
	cfg := kb.DefaultConfig()
	cfg.Drugs, cfg.Diseases = 100, 50
	d, err := kb.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	remote := kb.NewRemoteKB(d, 0, kb.WithSleeper(func(time.Duration) {}))
	tier, _ := hccache.New(256, 0)
	tc, _ := hccache.NewTiered(remote.Loader(), tier)
	key := "drug:" + d.DrugIDs[0]
	if _, err := tc.Get(key); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2MultiLevelCache measures a two-tier read that misses the
// client tier and hits the server tier.
func BenchmarkE2MultiLevelCache(b *testing.B) {
	cfg := kb.DefaultConfig()
	cfg.Drugs, cfg.Diseases = 100, 50
	d, err := kb.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	remote := kb.NewRemoteKB(d, 0, kb.WithSleeper(func(time.Duration) {}))
	client, _ := hccache.New(1, 0) // tiny: forces client misses
	server, _ := hccache.New(4096, 0)
	tc, _ := hccache.NewTiered(remote.Loader(), client, server)
	keys := []string{"drug:" + d.DrugIDs[0], "drug:" + d.DrugIDs[1], "drug:" + d.DrugIDs[2]}
	for _, k := range keys {
		tc.Get(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.Get(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3SharedKeyEncrypt / E3PublicKeyEncrypt quantify §IV-B1's
// shared-key rule per 64 KiB record.
func BenchmarkE3SharedKeyEncrypt(b *testing.B) {
	key, _ := hckrypto.NewSymmetricKey()
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hckrypto.EncryptGCM(key, payload, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3PublicKeyEncrypt(b *testing.B) {
	rsaKey, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		b.Fatal(err)
	}
	pub := rsaKey.Public()
	payload := make([]byte, 64<<10)
	chunk := pub.MaxOAEPPayload()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < len(payload); off += chunk {
			end := off + chunk
			if end > len(payload) {
				end = len(payload)
			}
			if _, err := pub.EncryptOAEP(payload[off:end]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE4HMAC / E4Signature compare integrity primitives (§IV-B1).
func BenchmarkE4HMAC(b *testing.B) {
	key, _ := hckrypto.NewSymmetricKey()
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag := hckrypto.MAC(key, payload)
		if !hckrypto.VerifyMAC(key, payload, tag) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkE4Signature(b *testing.B) {
	key, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig, err := key.Sign(payload)
		if err != nil {
			b.Fatal(err)
		}
		if !key.Public().Verify(payload, sig) {
			b.Fatal("verify failed")
		}
	}
}

// BenchmarkE5IngestPipeline measures one full background ingestion
// (decrypt → validate → scan → consent → de-identify → store).
func BenchmarkE5IngestPipeline(b *testing.B) {
	kms, err := hckrypto.NewKMS("bench")
	if err != nil {
		b.Fatal(err)
	}
	msgBus := bus.New()
	defer msgBus.Close()
	scanner, _ := scan.NewScanner(scan.DefaultSignatures()...)
	consents := consent.NewService()
	p, err := ingest.New(ingest.Deps{
		Tenant: "bench", KMS: kms,
		Lake:  store.NewDataLake(kms, "svc-storage"),
		IDMap: store.NewIdentityMap("svc-reident"),
		Bus:   msgBus, Scanner: scanner, Consents: consents,
		Verifier: &anonymize.VerificationService{},
		Log:      audit.NewLog(),
	})
	if err != nil {
		b.Fatal(err)
	}
	p.Start(1)
	defer p.Close()
	key, _ := p.RegisterClient("c")
	consents.Grant("p", "g", consent.PurposeResearch, 0)
	bundle := fhir.NewBundle("collection")
	bundle.AddResource(&fhir.Patient{ResourceType: "Patient", ID: "p", Gender: "female"})
	bundle.AddResource(&fhir.Observation{ResourceType: "Observation", Status: "final",
		Code: fhir.CodeableConcept{Text: "HbA1c"}, ValueQuantity: &fhir.Quantity{Value: 7}})
	raw, _ := fhir.Marshal(bundle)
	payload, _ := hckrypto.EncryptGCM(key, raw, []byte("c"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := p.Upload("c", "g", payload)
		if err != nil {
			b.Fatal(err)
		}
		if st, err := p.WaitForUpload(id, 30*time.Second); err != nil || st.State != ingest.StateStored {
			b.Fatalf("upload %d: %+v %v", i, st, err)
		}
	}
}

// BenchmarkE6LedgerCommit measures one endorsed, ordered, committed
// 16-transaction batch on a 3-peer network.
func BenchmarkE6LedgerCommit(b *testing.B) {
	net, err := blockchain.NewNetwork("bench", []string{"p0", "p1", "p2"}, 2)
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txs := make([]blockchain.Transaction, 16)
		for j := range txs {
			txs[j] = blockchain.NewTransaction(blockchain.EventDataReceipt, "bench",
				fmt.Sprintf("h-%d-%d", i, j), nil, nil)
		}
		if err := net.SubmitBatch(txs, 30*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7RedactableSign / E7VerifyRedacted measure the leakage-free
// scheme at 64 fields.
func BenchmarkE7RedactableSign(b *testing.B) {
	key, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		b.Fatal(err)
	}
	rec := make(redact.Record, 64)
	for i := range rec {
		rec[i] = redact.Field{Name: fmt.Sprintf("f%d", i), Value: "v"}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := redact.Sign(key, rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7VerifyRedacted(b *testing.B) {
	key, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		b.Fatal(err)
	}
	rec := make(redact.Record, 64)
	for i := range rec {
		rec[i] = redact.Field{Name: fmt.Sprintf("f%d", i), Value: "v"}
	}
	sr, err := redact.Sign(key, rec)
	if err != nil {
		b.Fatal(err)
	}
	disclose := make([]int, 0, 32)
	for i := 0; i < 64; i += 2 {
		disclose = append(disclose, i)
	}
	rr, err := sr.Redact(disclose)
	if err != nil {
		b.Fatal(err)
	}
	pub := key.Public()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := redact.VerifyRedacted(pub, rr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8AttestationChain measures the hardware→hypervisor→guest→
// container chain of Fig 5.
func BenchmarkE8AttestationChain(b *testing.B) {
	attSvc := attest.NewService()
	signer, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		b.Fatal(err)
	}
	attSvc.ApproveImageSigner(signer.Public())
	c := cloud.New(attSvc, audit.NewLog())
	img, _ := cloud.NewImage("os", []byte("os"), signer)
	c.Registry().Register(img)
	if _, err := c.ProvisionHost("h", 2); err != nil {
		b.Fatal(err)
	}
	if _, err := c.LaunchVM("h", "vm", "os"); err != nil {
		b.Fatal(err)
	}
	wl, _ := cloud.NewImage("wl", []byte("wl"), signer)
	c.Registry().Register(wl)
	if _, err := c.StartContainer("h", "vm", "ctr", "wl"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.AttestContainer("h", "vm", "ctr"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9JMFFit measures one JMF fit at evaluation scale.
func BenchmarkE9JMFFit(b *testing.B) {
	cfg := kb.DefaultConfig()
	cfg.Drugs, cfg.Diseases = 80, 60
	d, err := kb.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	train, _ := d.HoldOut(0.2, 1)
	var S, T [][][]float64
	for _, src := range kb.DrugSources {
		S = append(S, d.DrugSim[src])
	}
	for _, src := range kb.DiseaseSources {
		T = append(T, d.DisSim[src])
	}
	jcfg := jmf.DefaultConfig()
	jcfg.Iterations = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jmf.Fit(train, S, T, jcfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10DELTFit measures one DELT fit on a 500-patient cohort.
func BenchmarkE10DELTFit(b *testing.B) {
	cfg := emr.DefaultConfig()
	cfg.Patients = 500
	ds, err := emr.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := delt.Fit(ds, delt.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11KAnonymity measures cohort verification at 10k records.
func BenchmarkE11KAnonymity(b *testing.B) {
	table := &anonymize.Table{QuasiIDs: []string{"age", "zip", "sex"}, Sensitive: "dx"}
	for i := 0; i < 10_000; i++ {
		table.Rows = append(table.Rows, anonymize.Record{
			"age": anonymize.GeneralizeAge((i*37)%95, 10),
			"zip": anonymize.GeneralizeZip(fmt.Sprintf("%03d42", (i*i+3*i)%60), nil),
			"sex": []string{"F", "M"}[i%2],
			"dx":  fmt.Sprintf("dx-%d", i%7),
		})
	}
	v := &anonymize.VerificationService{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Verify(table); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12EdgePredict measures local model execution on the client.
func BenchmarkE12EdgePredict(b *testing.B) {
	m := &analytics.LinearModel{Name: "risk", Bias: 6,
		Weights: map[string]float64{"metformin": -1.2, "steroid": 0.4, "age": 0.05}}
	features := map[string]float64{"metformin": 1, "age": 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(features)
	}
}

// BenchmarkE13ShipWorkload measures the gateway's full trusted-transfer
// path (register, start, remote-attest) with a no-op WAN.
func BenchmarkE13ShipWorkload(b *testing.B) {
	attSvc := attest.NewService()
	signer, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		b.Fatal(err)
	}
	attSvc.ApproveImageSigner(signer.Public())
	dst := cloud.New(attSvc, audit.NewLog())
	osImg, _ := cloud.NewImage("os", []byte("os"), signer)
	dst.Registry().Register(osImg)
	if _, err := dst.ProvisionHost("h", 2); err != nil {
		b.Fatal(err)
	}
	if _, err := dst.LaunchVM("h", "vm", "os"); err != nil {
		b.Fatal(err)
	}
	gw, err := gateway.New(gateway.Link{Latency: time.Millisecond, BandwidthMBps: 100},
		gateway.WithSleeper(func(time.Duration) {}))
	if err != nil {
		b.Fatal(err)
	}
	img, _ := cloud.NewImage("wl", make([]byte, 1<<20), signer)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gw.ShipWorkload(dst, "h", "vm", fmt.Sprintf("wl-%d", i), img); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14TiresiasScore measures scoring one candidate drug pair.
func BenchmarkE14TiresiasScore(b *testing.B) {
	cfg := kb.DefaultConfig()
	cfg.Drugs, cfg.Diseases = 100, 20
	d, err := kb.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	full, err := d.GenerateInteractions(0.05)
	if err != nil {
		b.Fatal(err)
	}
	train, _ := tiresias.HoldOutPairs(full, 0.2)
	var sims [][][]float64
	for _, src := range kb.DrugSources {
		sims = append(sims, d.DrugSim[src])
	}
	m, err := tiresias.New(train, sims, tiresias.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score(i%50, 50+i%50)
	}
}
