module healthcloud

go 1.22
